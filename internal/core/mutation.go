package core

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// The dynamic-graph mutation subsystem: DeleteEdge and UpdateEdgeWeight
// complete the paper's future-work item that segmaint.go opened for
// insertions ("the pre-computed results, such as SegTable, should be
// maintained incrementally"), and ApplyMutations batches any mix of the
// three under one query-latch acquisition with a single version bump.
//
// Decremental soundness (deletions and weight increases): removing or
// weakening an edge (u, v) can only lengthen distances, so every SegTable
// row that stays untouched keeps a valid (cost, pid). The rows that CAN
// change are exactly those whose recorded pair (x, y) admits a shortest
// path through (u, v): such a path decomposes into a shortest prefix
// x -> u, the edge, and a shortest suffix v -> y, and both halves are
// within lthd — hence already recorded (or trivial, x = u / y = v). The
// touch set therefore joins TOutSegs against itself on the condition
// δ(x,u) + w + δ(v,y) <= δ(x,y), a superset of every affected pair,
// including pairs whose distance survives but whose stored pid chain
// routed through the edge (the condition holds with equality for those).
// Touched pairs are recomputed from scratch by a bounded set-Dijkstra
// sweep seeded only at the touched sources, then the surviving original
// edges are folded back in (Definition 4(2)) — both restricted to the
// touch set. Untouched pid chains stay consistent: if a chain's
// intermediate pair (x, p) lost its distance, the continuation p -> y
// would put the deleted edge on a shortest x -> y path, contradicting
// (x, y) being untouched. When the touch set exceeds
// Options.RepairThreshold the engine rebuilds the whole index instead —
// past that point the scoped sweep costs more than construction.
//
// See docs/ARCHITECTURE.md §Dynamic graph mutations for the full argument.

// MutOp is one mutation kind.
type MutOp int

// Mutation operations.
const (
	// MutInsert adds a (From, To, Weight) edge.
	MutInsert MutOp = iota
	// MutDelete removes every (From, To) edge (parallel edges included).
	MutDelete
	// MutUpdate sets the cost of every (From, To) edge to Weight.
	MutUpdate
)

func (op MutOp) String() string {
	switch op {
	case MutInsert:
		return "insert"
	case MutDelete:
		return "delete"
	case MutUpdate:
		return "update"
	}
	return fmt.Sprintf("MutOp(%d)", int(op))
}

// ParseMutOp maps a case-insensitive operation name (insert, delete,
// update) to its MutOp; the serving tier shares this parser.
func ParseMutOp(s string) (MutOp, error) {
	switch strings.ToLower(s) {
	case "insert":
		return MutInsert, nil
	case "delete":
		return MutDelete, nil
	case "update":
		return MutUpdate, nil
	}
	return 0, fmt.Errorf("unknown mutation op %q (insert|delete|update)", s)
}

// Mutation is one edge change for ApplyMutations. Weight is ignored for
// MutDelete.
type Mutation struct {
	Op       MutOp
	From, To int64
	Weight   int64
}

// MutationCounters accumulates the mutation subsystem's activity over the
// engine's lifetime (Engine.MutationStats).
type MutationCounters struct {
	// Applied mutations by kind.
	Inserts uint64
	Deletes uint64
	Updates uint64
	// Batches counts ApplyMutations calls that applied at least one
	// mutation (single-edge helpers don't count).
	Batches uint64
	// SegRepairs counts scoped decremental repairs; SegRebuilds counts
	// threshold-exceeded fallbacks to a full BuildSegTable.
	SegRepairs  uint64
	SegRebuilds uint64
	// RowsRepaired totals SegTable rows re-materialized by scoped repairs.
	RowsRepaired uint64
	// OracleInvalidations counts mutations (or batches) that killed a
	// built landmark oracle.
	OracleInvalidations uint64
	// LabelKeeps counts mutations the label keep-analysis proved
	// distance-preserving (the hub-label index survived them);
	// LabelInvalidations counts mutations that sent a built index cold.
	LabelKeeps         uint64
	LabelInvalidations uint64
}

// Mutation scratch relations (created lazily, cleared per use):
// TMutTouch holds the touched (fid, tid) pairs, TMutSrc the seed nodes for
// the bounded repair sweep.
const (
	tblMutTouch = "TMutTouch"
	tblMutSrc   = "TMutSrc"
)

// Mutation statement shapes: constant texts, edge endpoints and weights
// bound as parameters, so ApplyMutations batches re-execute cached plans.
const (
	mutInsertEdgeQ = "INSERT INTO " + TblEdges + " (fid, tid, cost) VALUES (?, ?, ?)"
	mutMinCostQ    = "SELECT MIN(cost) FROM " + TblEdges + " WHERE fid = ? AND tid = ?"
	mutDeleteQ     = "DELETE FROM " + TblEdges + " WHERE fid = ? AND tid = ?"
	mutUpdateQ     = "UPDATE " + TblEdges + " SET cost = ? WHERE fid = ? AND tid = ?"
	mutWMinQ       = "SELECT MIN(cost) FROM " + TblEdges

	// Touch-set shapes (computeTouchSet), one per decomposition case.
	touchPairQ = "INSERT INTO " + tblMutTouch + " (fid, tid) SELECT s.fid, s.tid FROM " +
		TblOutSegs + " s WHERE s.fid = ? AND s.tid = ?"
	touchPrefixQ = "INSERT INTO " + tblMutTouch + " (fid, tid) SELECT s.fid, s.tid FROM " +
		TblOutSegs + " s, " + TblOutSegs + " a " +
		"WHERE s.tid = ? AND s.fid <> ? AND a.tid = ? AND a.fid = s.fid AND a.cost + ? <= s.cost"
	touchSuffixQ = "INSERT INTO " + tblMutTouch + " (fid, tid) SELECT s.fid, s.tid FROM " +
		TblOutSegs + " s, " + TblOutSegs + " b " +
		"WHERE s.fid = ? AND s.tid <> ? AND b.fid = ? AND b.tid = s.tid AND ? + b.cost <= s.cost"
	touchBothQ = "INSERT INTO " + tblMutTouch + " (fid, tid) SELECT s.fid, s.tid FROM " +
		TblOutSegs + " s, " + TblOutSegs + " a, " + TblOutSegs + " b " +
		"WHERE s.fid <> ? AND s.tid <> ? AND a.tid = ? AND a.fid = s.fid " +
		"AND b.fid = ? AND b.tid = s.tid AND a.cost + ? + b.cost <= s.cost"

	touchCountQ = "SELECT COUNT(*) FROM " + tblMutTouch
	mutSrcClear = "DELETE FROM " + tblMutSrc
)

// DeleteEdge removes every (from, to) edge from TEdges — parallel edges
// included — and, when a SegTable is built, repairs TOutSegs/TInSegs
// decrementally (or rebuilds them past Options.RepairThreshold). Deleting
// a pair with no edge is an error.
func (e *Engine) DeleteEdge(from, to int64) (*MaintStats, error) {
	return e.applyMutations([]Mutation{{Op: MutDelete, From: from, To: to}}, false)
}

// UpdateEdgeWeight sets the cost of every (from, to) edge to weight —
// parallel edges collapse to one effective cost. A decrease is maintained
// like an insertion (new shortest paths through the cheaper edge), an
// increase like a deletion (recorded paths through the edge re-routed).
func (e *Engine) UpdateEdgeWeight(from, to, weight int64) (*MaintStats, error) {
	return e.applyMutations([]Mutation{{Op: MutUpdate, From: from, To: to, Weight: weight}}, false)
}

// ApplyMutations applies a batch of edge mutations under one query-latch
// acquisition: concurrent searches either complete before the batch or
// observe its full result, never a prefix. The whole batch costs a single
// version bump, one path-cache purge and at most one oracle invalidation.
// Mutations are validated up front; a validation error applies nothing. An
// execution error mid-batch leaves the applied prefix in place (the
// version was already bumped, so no stale answer can be served either
// way) and returns the partial MaintStats alongside the error —
// MaintStats.Applied tells callers how much of the batch persisted. When
// nothing wrote at all (e.g. the first delete hits a missing edge), the
// pre-batch oracle is restored: a no-op request must not cold-stop
// approximate service.
func (e *Engine) ApplyMutations(muts []Mutation) (*MaintStats, error) {
	return e.applyMutations(muts, true)
}

func (e *Engine) applyMutations(muts []Mutation, batch bool) (*MaintStats, error) {
	if len(muts) == 0 {
		return &MaintStats{}, nil
	}
	if e.optErr != nil {
		return nil, e.optErr
	}
	// Mutating the graph excludes searches; the path cache in front of the
	// latch is purged by the version bump below. Mutations are not
	// cancellable — an abandoned half-batch would still need the same
	// repair work to reach a sound index.
	ctx := context.Background()
	if err := e.lockQuery(ctx); err != nil {
		return nil, err
	}
	defer e.unlockQuery()
	return e.applyMutationsLocked(ctx, muts, batch)
}

// applyMutationsLocked is the batch body; callers hold the exclusive gate.
// Split out so WAL replay (durability.go) — which already holds the gate
// across the whole hydration — can re-apply logged batches without a
// deadlocking second acquisition.
func (e *Engine) applyMutationsLocked(ctx context.Context, muts []Mutation, batch bool) (*MaintStats, error) {
	nodes := e.Nodes()
	if nodes == 0 {
		return nil, ErrNoGraph
	}
	for i, m := range muts {
		if m.From < 0 || m.To < 0 || int(m.From) >= nodes || int(m.To) >= nodes {
			return nil, fmt.Errorf("core: mutation %d: node out of range (n=%d)", i, nodes)
		}
		switch m.Op {
		case MutInsert, MutUpdate:
			if m.Weight < 1 {
				return nil, fmt.Errorf("core: mutation %d: edge weight must be positive, got %d", i, m.Weight)
			}
		case MutDelete:
		default:
			return nil, fmt.Errorf("core: mutation %d: unknown op %v", i, m.Op)
		}
	}
	// Write-ahead: the whole validated batch is logged and fsynced before
	// the first statement touches TEdges, so a crash at any later point
	// replays to the same state — including the applied prefix of a batch
	// that fails mid-way, since re-applying the logged batch reproduces the
	// same failure at the same mutation. An append failure applies nothing.
	// The record's version is what the batch will commit as: bumps happen
	// only under the exclusive gate, which we hold, so e.version + 1 is
	// stable here.
	if err := e.walAppendLocked(muts); err != nil {
		return nil, err
	}

	st := &MaintStats{}
	start := time.Now()
	qs := &QueryStats{Algorithm: "SegMaint"}

	// Invalidate before touching TEdges: the single version bump makes
	// every cached answer unreachable, and a built oracle goes cold (any
	// mutation can move landmark distances in either direction, so neither
	// bound survives). The hub-label index is NOT invalidated up front:
	// each mutation runs the keep-analysis of labels.go, and the index
	// survives changes the labels themselves prove distance-preserving.
	e.mu.Lock()
	prevOrc, prevStale := e.orc, e.orcStale
	prevLbl, prevLblStale := e.lbl, e.lblStale
	if e.orc != nil {
		e.orc = nil
		e.orcStale = true
		st.OracleInvalidated = true
		e.muts.OracleInvalidations++
	}
	e.bumpVersionLocked()
	e.mu.Unlock()

	wrote := false
	for i := range muts {
		if err := e.applyOneLocked(ctx, qs, st, muts[i], &wrote); err != nil {
			e.mu.Lock()
			if !wrote {
				// No mutation reached TEdges (existence checks fail
				// before the first write), so the graph is unchanged and
				// the pre-batch oracle and label index are still sound —
				// restore them rather than leaving fast answers cold over
				// a no-op request. The version bump stands; it only cost
				// a cache purge.
				e.orc, e.orcStale = prevOrc, prevStale
				if st.OracleInvalidated {
					e.muts.OracleInvalidations--
				}
				st.OracleInvalidated = false
				e.lbl, e.lblStale = prevLbl, prevLblStale
				if st.LabelsInvalidated {
					e.muts.LabelInvalidations--
				}
				st.LabelsInvalidated = false
			} else {
				// The graph changed but a maintenance step failed, so the
				// SegTable can be missing improvements or mid-repair:
				// mark it cold — BSEG refuses until BuildSegTable —
				// rather than silently serving a half-repaired index. The
				// same goes for the label index: a keep-check that
				// errored out proved nothing, so it must not keep serving.
				e.segBuilt = false
				if e.lbl != nil {
					e.lbl = nil
					e.lblStale = true
					e.muts.LabelInvalidations++
					st.LabelsInvalidated = true
				}
			}
			if batch && st.Applied > 0 {
				e.muts.Batches++
			}
			st.Version = e.version
			e.mu.Unlock()
			st.Statements = qs.Statements
			st.Time = time.Since(start)
			return st, fmt.Errorf("core: mutation %d (%s %d->%d): %w", i, muts[i].Op, muts[i].From, muts[i].To, err)
		}
		st.Applied++
	}
	e.mu.Lock()
	if batch {
		e.muts.Batches++
	}
	st.Version = e.version
	e.mu.Unlock()
	st.Statements = qs.Statements
	st.Time = time.Since(start)
	return st, nil
}

// applyOneLocked dispatches one validated mutation; callers hold queryMu
// and have already bumped the version. wrote flips to true the moment a
// mutation's first TEdges statement succeeds — the batch error path uses
// it to tell "graph unchanged" from "prefix applied".
func (e *Engine) applyOneLocked(ctx context.Context, qs *QueryStats, st *MaintStats, m Mutation, wrote *bool) error {
	switch m.Op {
	case MutInsert:
		return e.insertLocked(ctx, qs, st, m.From, m.To, m.Weight, wrote)
	case MutDelete:
		return e.deleteLocked(ctx, qs, st, m.From, m.To, wrote)
	case MutUpdate:
		return e.updateLocked(ctx, qs, st, m.From, m.To, m.Weight, wrote)
	}
	return fmt.Errorf("unknown op %v", m.Op)
}

// insertLocked adds the edge and runs the incremental insertion
// maintenance of segmaint.go.
func (e *Engine) insertLocked(ctx context.Context, qs *QueryStats, st *MaintStats, from, to, weight int64, wrote *bool) error {
	if _, err := e.exec(ctx, qs, nil, nil, mutInsertEdgeQ, from, to, weight); err != nil {
		return err
	}
	*wrote = true
	e.mu.Lock()
	e.edges++
	if weight < e.wmin {
		e.wmin = weight
	}
	e.muts.Inserts++
	segBuilt := e.segBuilt
	e.mu.Unlock()
	// The label keep-check reads only the label relations, which the
	// TEdges insert did not touch, so it still sees pre-mutation distances.
	if err := e.labelKeepUpsert(ctx, qs, st, from, to, weight); err != nil {
		return err
	}
	if !segBuilt {
		return nil
	}
	return e.maintainBothDirections(ctx, qs, st, from, to, weight)
}

// maintainBothDirections runs the insertion-style maintenance of
// segmaint.go over TOutSegs and TInSegs, accumulating the improved rows.
func (e *Engine) maintainBothDirections(ctx context.Context, qs *QueryStats, st *MaintStats, from, to, weight int64) error {
	for _, forward := range []bool{true, false} {
		affected, err := e.maintainDirection(ctx, qs, from, to, weight, forward)
		if err != nil {
			return err
		}
		st.Affected += affected
	}
	return nil
}

// deleteLocked removes every (from, to) edge and repairs the SegTable.
func (e *Engine) deleteLocked(ctx context.Context, qs *QueryStats, st *MaintStats, from, to int64, wrote *bool) error {
	// The touch set needs the edge's pre-delete effective weight: with
	// parallel edges only the cheapest can lie on a shortest path, and a
	// smaller weight yields the larger (safe) touch superset.
	oldW, null, err := e.queryInt(ctx, qs, nil, mutMinCostQ, from, to)
	if err != nil {
		return err
	}
	if null {
		return fmt.Errorf("no edge to delete")
	}
	e.mu.RLock()
	segBuilt := e.segBuilt
	wmin := e.wmin
	e.mu.RUnlock()
	if segBuilt {
		if err := e.computeTouchSet(ctx, qs, from, to, oldW); err != nil {
			return err
		}
	}
	n, err := e.exec(ctx, qs, nil, nil, mutDeleteQ, from, to)
	if err != nil {
		return err
	}
	*wrote = true
	e.mu.Lock()
	e.edges -= int(n)
	e.muts.Deletes++
	e.mu.Unlock()
	// wmin is a lower bound on edge weights for the frontier-selection
	// proof; deletions can only raise the true minimum, so refreshing is
	// an optimization, not a soundness need.
	if oldW <= wmin {
		if err := e.refreshWMin(ctx, qs); err != nil {
			return err
		}
	}
	// The labels still realize the pre-delete distances; the keep-check
	// against the old effective weight decides whether any of them routed
	// through the removed edge.
	if err := e.labelKeepDecrement(ctx, qs, st, from, to, oldW); err != nil {
		return err
	}
	if !segBuilt {
		return nil
	}
	return e.repairTouchedLocked(ctx, qs, st)
}

// updateLocked sets the cost of every (from, to) edge and repairs the
// SegTable: relaxations reuse the insertion maintenance, weakenings the
// decremental repair.
func (e *Engine) updateLocked(ctx context.Context, qs *QueryStats, st *MaintStats, from, to, weight int64, wrote *bool) error {
	oldW, null, err := e.queryInt(ctx, qs, nil, mutMinCostQ, from, to)
	if err != nil {
		return err
	}
	if null {
		return fmt.Errorf("no edge to update")
	}
	e.mu.RLock()
	segBuilt := e.segBuilt
	wmin := e.wmin
	e.mu.RUnlock()
	if segBuilt && weight > oldW {
		// Weakening: the touch set must be computed against the old
		// effective weight, before TEdges changes underneath the sweep.
		if err := e.computeTouchSet(ctx, qs, from, to, oldW); err != nil {
			return err
		}
	}
	if _, err := e.exec(ctx, qs, nil, nil, mutUpdateQ, weight, from, to); err != nil {
		return err
	}
	*wrote = true
	e.mu.Lock()
	if weight < e.wmin {
		e.wmin = weight
	}
	e.muts.Updates++
	e.mu.Unlock()
	if weight > oldW && oldW <= wmin {
		if err := e.refreshWMin(ctx, qs); err != nil {
			return err
		}
	}
	// Label keep-analysis: a decrease is the incremental case (the new
	// weight must already be covered by the old label distance), an
	// increase the decremental one (no label entry may have routed through
	// the edge at its old weight). An unchanged weight moves nothing.
	if weight < oldW {
		if err := e.labelKeepUpsert(ctx, qs, st, from, to, weight); err != nil {
			return err
		}
	} else if weight > oldW {
		if err := e.labelKeepDecrement(ctx, qs, st, from, to, oldW); err != nil {
			return err
		}
	}
	if !segBuilt || weight == oldW {
		return nil
	}
	if weight < oldW {
		// Relaxation: exactly the insertion case — a new shortest path
		// through the cheaper edge decomposes into recorded halves.
		return e.maintainBothDirections(ctx, qs, st, from, to, weight)
	}
	return e.repairTouchedLocked(ctx, qs, st)
}

// refreshWMin re-reads the minimal edge weight after a deletion or weight
// increase may have removed the old minimum.
func (e *Engine) refreshWMin(ctx context.Context, qs *QueryStats) error {
	wmin, null, err := e.queryInt(ctx, qs, nil, mutWMinQ)
	if err != nil {
		return err
	}
	if null || wmin < 1 {
		wmin = 1
	}
	e.mu.Lock()
	e.wmin = wmin
	e.mu.Unlock()
	return nil
}

// ensureMutScratch lazily creates the repair scratch tables and clears
// them for the next touch set.
func (e *Engine) ensureMutScratch(ctx context.Context, qs *QueryStats) error {
	if _, ok := e.db.Catalog().Get(tblMutTouch); !ok {
		for _, q := range []string{
			"CREATE TABLE " + tblMutTouch + " (fid INT, tid INT)",
			"CREATE CLUSTERED INDEX tmuttouch_fid ON " + tblMutTouch + " (fid)",
			"CREATE TABLE " + tblMutSrc + " (nid INT)",
		} {
			if _, err := e.sess.Exec(q); err != nil {
				return err
			}
			qs.Statements++
		}
	}
	for _, tbl := range []string{tblMutTouch, tblMutSrc} {
		if _, err := e.exec(ctx, qs, nil, nil, "DELETE FROM "+tbl); err != nil {
			return err
		}
	}
	return nil
}

// computeTouchSet fills TMutTouch with every recorded (fid, tid) pair
// whose shortest path could route through the edge (u, v, w): the pair
// itself, prefix-only pairs (x, v), suffix-only pairs (u, y), and
// both-half pairs (x, y), mirroring the four insertion-maintenance cases.
// TOutSegs and TInSegs record the same pair set, so one touch set serves
// both directions. Must run while TOutSegs still reflects the pre-mutation
// graph.
func (e *Engine) computeTouchSet(ctx context.Context, qs *QueryStats, u, v, w int64) error {
	if err := e.ensureMutScratch(ctx, qs); err != nil {
		return err
	}
	ins := func(q string, args ...any) error {
		_, err := e.exec(ctx, qs, nil, nil, q, args...)
		return err
	}
	// 1) the recorded pair (u, v) itself — its cost or pid may come from
	// the edge directly.
	if err := ins(touchPairQ, u, v); err != nil {
		return err
	}
	// 2) x != u, y = v: a recorded prefix x -> u continues over the edge.
	if err := ins(touchPrefixQ, v, u, u, w); err != nil {
		return err
	}
	// 3) x = u, y != v: the edge continues into a recorded suffix v -> y.
	if err := ins(touchSuffixQ, u, v, v, w); err != nil {
		return err
	}
	// 4) x != u, y != v: both halves recorded. TOutSegs is keyed on
	// (fid, tid), so each shape emits each pair at most once and the
	// shapes are disjoint — no dedup needed.
	return ins(touchBothQ, u, v, u, v, w)
}

// repairTouchedLocked re-derives every touched SegTable row from the
// post-mutation TEdges, or rebuilds the whole index when the touch set
// exceeds the repair threshold. Callers hold queryMu and have already run
// computeTouchSet.
func (e *Engine) repairTouchedLocked(ctx context.Context, qs *QueryStats, st *MaintStats) error {
	affected, _, err := e.queryInt(ctx, qs, nil, touchCountQ)
	if err != nil {
		return err
	}
	st.Affected += affected
	if affected == 0 {
		return nil
	}
	thr := e.opts.RepairThreshold
	if thr == 0 {
		thr = DefaultRepairThreshold
	}
	if thr < 0 || affected > int64(thr) {
		st.Rebuilt = true
		e.mu.Lock()
		e.muts.SegRebuilds++
		e.mu.Unlock()
		// A mutation-triggered rebuild makes the replica momentarily cold
		// for BSEG traffic; surface it through the readiness probe like any
		// other build.
		done := e.trackBuild()
		_, err := e.buildSegTableLocked(ctx, e.segLthd, false)
		done()
		return err
	}

	var repaired int64
	for _, forward := range []bool{true, false} {
		n, err := e.repairDirection(ctx, qs, forward)
		if err != nil {
			return err
		}
		repaired += n
	}
	st.Repaired += repaired
	e.mu.Lock()
	e.muts.SegRepairs++
	e.muts.RowsRepaired += uint64(repaired)
	e.mu.Unlock()
	return nil
}

// repairDirection recomputes one direction's touched rows: a bounded
// set-Dijkstra sweep from the touched sources over the mutated TEdges,
// delete-and-reinsert of the touched pairs, then the original-edge fold
// restricted to the same pairs.
func (e *Engine) repairDirection(ctx context.Context, qs *QueryStats, forward bool) (int64, error) {
	target, srcCol := TblOutSegs, "fid"
	if !forward {
		target, srcCol = TblInSegs, "tid"
	}
	// Seed the sweep at the fid endpoints (forward: distances FROM x; the
	// backward sweep walks incoming edges from tid seeds, computing
	// distances TO y).
	if _, err := e.exec(ctx, qs, nil, nil, mutSrcClear); err != nil {
		return 0, err
	}
	if _, err := e.exec(ctx, qs, nil, nil,
		"INSERT INTO "+tblMutSrc+" (nid) SELECT DISTINCT "+srcCol+" FROM "+tblMutTouch); err != nil {
		return 0, err
	}
	if _, err := e.segSweep(ctx, qs, e.segLthd, forward, tblMutSrc); err != nil {
		return 0, err
	}
	// Drop the touched rows; distances can only have grown, so untouched
	// rows keep valid (cost, pid) entries.
	if _, err := e.exec(ctx, qs, nil, nil,
		"DELETE FROM "+target+" WHERE EXISTS (SELECT fid FROM "+tblMutTouch+
			" m WHERE m.fid = "+target+".fid AND m.tid = "+target+".tid)"); err != nil {
		return 0, err
	}
	// Re-materialize the touched pairs that are still within lthd.
	var insQ string
	if forward {
		insQ = "INSERT INTO " + target + " (fid, tid, pid, cost) SELECT s.src, s.nid, s.par, s.dist FROM " +
			TblSeg + " s WHERE s.src <> s.nid AND EXISTS (SELECT fid FROM " + tblMutTouch +
			" m WHERE m.fid = s.src AND m.tid = s.nid)"
	} else {
		insQ = "INSERT INTO " + target + " (fid, tid, pid, cost) SELECT s.nid, s.src, s.par, s.dist FROM " +
			TblSeg + " s WHERE s.src <> s.nid AND EXISTS (SELECT fid FROM " + tblMutTouch +
			" m WHERE m.fid = s.nid AND m.tid = s.src)"
	}
	repaired, err := e.exec(ctx, qs, nil, nil, insQ)
	if err != nil {
		return 0, err
	}
	// Surviving original edges on touched pairs re-enter per
	// Definition 4(2).
	if err := e.foldEdges(ctx, qs, forward, tblMutTouch); err != nil {
		return 0, err
	}
	return repaired, nil
}
