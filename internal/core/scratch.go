package core

import (
	"fmt"
	"sync"
)

// Per-query scratch tables.
//
// Every relational search scribbles its whole working state into the
// frontier/visited/answer tables (TVisited, TExpand, TExpCost). When all
// searches shared one set — the paper's single JDBC session — they had to
// serialize. The engine now leases each read-only search a private,
// uniquely-named set (TVisited_q0, TExpand_q0, ... TVisited_q1, ...) so N
// searches write disjoint tables and the rdb layer's per-table locks let
// them run concurrently.
//
// Sets are pooled: a release parks the set on a free list (up to
// Options.ScratchRetain) instead of dropping it, and ids recycle through a
// free-id list, so the population of distinct table names — and therefore
// of distinct statement texts, prepared handles and plan-cache entries —
// stays bounded no matter how many queries run. DDL (CREATE/DROP, each
// bumping the schema epoch) happens only when the pool grows past its
// high-water mark or shrinks past the retain floor, never per query.
//
// The global set (id -1) keeps the original TVisited/TExpand/TExpCost
// names; it is created by LoadGraph and reserved for operations that
// already run under the exclusive gate (MST, Reachable, SegTable builds).

// DefaultScratchRetain is how many scratch sets a release keeps warm when
// Options.ScratchRetain is 0. Sized for the bench's concurrency levels;
// small enough that the per-set statement shapes stay well inside the plan
// cache's default capacity.
const DefaultScratchRetain = 4

// scratchSet is one private set of working tables plus every statement text
// the search loops issue against it, rendered once at mint time so the hot
// path only binds parameters (the texts are per-set constants, shared by
// every query that leases the set).
type scratchSet struct {
	id      int
	visited string
	expand  string
	expCost string

	// Bi-directional FEM loop (fem.go).
	biInit, biResetF, biResetB, biMinSum, biMinF, biMinB string
	// Single-directional Dijkstra (dj.go).
	djInit, djMid, djFinalize, djTarget, djDist string
	// Path recovery (recover.go).
	recP2S, recP2T, meet string
	// Working-table reset and the search-space metric (loader.go).
	resets [3]string
	count  string
}

// newScratchSet renders the statement texts for set id (negative = the
// global TVisited set).
func newScratchSet(id int) *scratchSet {
	sc := &scratchSet{id: id, visited: TblVisited, expand: TblExpand, expCost: TblExpCost}
	if id >= 0 {
		suffix := fmt.Sprintf("_q%d", id)
		sc.visited += suffix
		sc.expand += suffix
		sc.expCost += suffix
	}
	v := sc.visited
	sc.biInit = "INSERT INTO " + v + " (nid, d2s, p2s, f, d2t, p2t, b) VALUES (?, 0, ?, 0, ?, ?, 1), (?, ?, ?, 1, 0, ?, 0)"
	sc.biResetF = "UPDATE " + v + " SET f = 1 WHERE f = 2"
	sc.biResetB = "UPDATE " + v + " SET b = 1 WHERE b = 2"
	sc.biMinSum = "SELECT MIN(d2s + d2t) FROM " + v
	sc.biMinF = "SELECT MIN(d2s) FROM " + v + " WHERE f = 0"
	sc.biMinB = "SELECT MIN(d2t) FROM " + v + " WHERE b = 0"
	sc.djInit = "INSERT INTO " + v + " (nid, d2s, p2s, f, d2t, p2t, b) VALUES (?, 0, ?, 0, ?, ?, 1)"
	sc.djMid = "SELECT TOP 1 nid FROM " + v + " WHERE f = 0 AND d2s = (SELECT MIN(d2s) FROM " + v + " WHERE f = 0)"
	sc.djFinalize = "UPDATE " + v + " SET f = 1 WHERE nid = ?"
	sc.djTarget = "SELECT nid FROM " + v + " WHERE f = 1 AND nid = ?"
	sc.djDist = "SELECT d2s FROM " + v + " WHERE nid = ?"
	sc.recP2S = "SELECT p2s FROM " + v + " WHERE nid = ?"
	sc.recP2T = "SELECT p2t FROM " + v + " WHERE nid = ?"
	sc.meet = "SELECT TOP 1 nid FROM " + v + " WHERE d2s + d2t = ?"
	sc.resets = [3]string{"DELETE FROM " + sc.visited, "DELETE FROM " + sc.expand, "DELETE FROM " + sc.expCost}
	sc.count = "SELECT COUNT(*) FROM " + v
	return sc
}

// minCandidate is the shared "minimal unfinalized distance" subquery of the
// Dijkstra-family frontier rules, rendered per direction over the set's
// visited table.
func (sc *scratchSet) minCandidate(d direction) string {
	return "(SELECT MIN(" + d.dist + ") FROM " + sc.visited + " WHERE " + d.sign + " = 0)"
}

// ScratchStats snapshots the scratch-table pool for the serving tier.
type ScratchStats struct {
	// Minted counts table-set creations (DDL); Dropped counts releases that
	// dropped a set past the retain floor.
	Minted  uint64 `json:"minted"`
	Dropped uint64 `json:"dropped"`
	// Live is the number of sets currently leased to in-flight queries;
	// Free the number parked on the free list.
	Live int `json:"live"`
	Free int `json:"free"`
}

// scratchPool leases scratch sets to searches. Acquire pops the free list
// or mints a fresh set; release parks it (up to the retain floor) or drops
// its tables. Ids recycle so table names — and every derived statement
// text — repeat instead of growing without bound.
type scratchPool struct {
	e       *Engine
	mu      sync.Mutex
	free    []*scratchSet
	freeIDs []int
	nextID  int
	live    int
	minted  uint64
	dropped uint64
}

// retain resolves Options.ScratchRetain: 0 = default, negative = keep none
// (every release drops; the cancellation-leak test runs in this mode so the
// catalog must return to its baseline exactly).
func (p *scratchPool) retain() int {
	r := p.e.opts.ScratchRetain
	if r == 0 {
		return DefaultScratchRetain
	}
	if r < 0 {
		return 0
	}
	return r
}

// acquire leases a set, minting tables when the free list is empty.
func (p *scratchPool) acquire() (*scratchSet, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		sc := p.free[n-1]
		p.free = p.free[:n-1]
		p.live++
		p.mu.Unlock()
		return sc, nil
	}
	var id int
	if n := len(p.freeIDs); n > 0 {
		id = p.freeIDs[n-1]
		p.freeIDs = p.freeIDs[:n-1]
	} else {
		id = p.nextID
		p.nextID++
	}
	p.live++
	p.minted++
	p.mu.Unlock()
	sc := newScratchSet(id)
	if err := p.e.createScratchTables(sc); err != nil {
		p.mu.Lock()
		p.live--
		p.freeIDs = append(p.freeIDs, id)
		p.mu.Unlock()
		return nil, err
	}
	return sc, nil
}

// release returns a leased set, dropping its tables past the retain floor.
func (p *scratchPool) release(sc *scratchSet) {
	p.mu.Lock()
	p.live--
	if len(p.free) < p.retain() {
		p.free = append(p.free, sc)
		p.mu.Unlock()
		return
	}
	p.dropped++
	p.mu.Unlock()
	// Drop before recycling the id: the moment the id is on freeIDs a
	// concurrent acquire may mint tables under the same names, and a drop
	// issued after that would destroy the new lease's live tables.
	p.e.dropScratchTables(sc)
	p.mu.Lock()
	p.freeIDs = append(p.freeIDs, sc.id)
	p.mu.Unlock()
}

// stats snapshots the pool.
func (p *scratchPool) stats() ScratchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ScratchStats{Minted: p.minted, Dropped: p.dropped, Live: p.live, Free: len(p.free)}
}

// createScratchTables mints the set's tables under the engine's index
// strategy — the same physical design createVisitedTables gives the global
// set, with per-set index names. Creation failures drop whatever partial
// prefix was created so a failed mint never leaks catalog entries.
func (e *Engine) createScratchTables(sc *scratchSet) error {
	// A recycled id may find leftovers from a drop that failed midway;
	// clear them so the creates below start clean.
	e.dropScratchTables(sc)
	var stmts []string
	switch e.opts.Strategy {
	case ClusteredIndex:
		stmts = append(stmts,
			"CREATE TABLE "+sc.visited+" (nid INT PRIMARY KEY, d2s INT, p2s INT, f INT, d2t INT, p2t INT, b INT)",
			"CREATE TABLE "+sc.expand+" (nid INT PRIMARY KEY, par INT, cost INT)",
			"CREATE TABLE "+sc.expCost+" (nid INT PRIMARY KEY, cost INT)",
		)
	case SecondaryIndex:
		sfx := fmt.Sprintf("_q%d", sc.id)
		stmts = append(stmts,
			"CREATE TABLE "+sc.visited+" (nid INT, d2s INT, p2s INT, f INT, d2t INT, p2t INT, b INT)",
			"CREATE UNIQUE INDEX tvisited"+sfx+"_nid ON "+sc.visited+" (nid)",
			"CREATE TABLE "+sc.expand+" (nid INT, par INT, cost INT)",
			"CREATE UNIQUE INDEX texpand"+sfx+"_nid ON "+sc.expand+" (nid)",
			"CREATE TABLE "+sc.expCost+" (nid INT, cost INT)",
			"CREATE UNIQUE INDEX texpcost"+sfx+"_nid ON "+sc.expCost+" (nid)",
		)
	case NoIndex:
		stmts = append(stmts,
			"CREATE TABLE "+sc.visited+" (nid INT, d2s INT, p2s INT, f INT, d2t INT, p2t INT, b INT)",
			"CREATE TABLE "+sc.expand+" (nid INT, par INT, cost INT)",
			"CREATE TABLE "+sc.expCost+" (nid INT, cost INT)",
		)
	}
	for _, s := range stmts {
		if _, err := e.sess.Exec(s); err != nil {
			e.dropScratchTables(sc)
			return err
		}
	}
	return nil
}

// dropScratchTables removes whichever of the set's tables exist.
func (e *Engine) dropScratchTables(sc *scratchSet) {
	for _, tbl := range []string{sc.visited, sc.expand, sc.expCost} {
		if _, ok := e.db.Catalog().Get(tbl); ok {
			// Best-effort: a failed drop leaves a harmless empty table that
			// the next lease of this id will find already present.
			_, _ = e.sess.Exec("DROP TABLE " + tbl)
		}
	}
}
