package core

import (
	"runtime"
	"sync"
)

// BatchQuery is one (source, target) pair in a batch.
type BatchQuery struct {
	S, T int64
}

// BatchResult pairs one batch query with its outcome. Err is per-query:
// one bad pair does not fail the batch.
type BatchResult struct {
	Query BatchQuery
	Path  Path
	Stats *QueryStats
	Err   error
}

// ShortestPathBatch answers a set of queries with the given algorithm,
// fanning them across a pool of workers goroutines (0 means GOMAXPROCS).
// Results are returned in input order.
//
// The pool's parallelism pays off in two places: queries answered by the
// path cache complete concurrently without touching the DB, and duplicate
// pairs in the same batch collapse — the first worker through the query
// latch computes, the rest hit the cache on the re-check. Distinct uncached
// queries still serialize on the latch, like the paper's single JDBC
// session.
func (e *Engine) ShortestPathBatch(alg Algorithm, queries []BatchQuery, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	results := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return results
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := queries[i]
				p, qs, err := e.ShortestPath(alg, q.S, q.T)
				results[i] = BatchResult{Query: q, Path: p, Stats: qs, Err: err}
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}
