package core

import (
	"context"
	"runtime"
	"sync"
)

// BatchQuery is one (source, target) pair in a legacy batch.
type BatchQuery struct {
	S, T int64
}

// BatchResult pairs one legacy batch query with its outcome. Err is
// per-query: one bad pair does not fail the batch.
type BatchResult struct {
	Query BatchQuery
	Path  Path
	Stats *QueryStats
	Err   error
}

// runBatch fans n work items across a worker pool. Cancelling ctx stops
// feeding the pool; every unstarted item gets abandon(i) instead.
func runBatch(ctx context.Context, n, workers int, work func(i int), abandon func(i int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				work(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			// Stop feeding; mark this and every remaining item abandoned.
			for j := i; j < n; j++ {
				abandon(j)
			}
			break feed
		}
	}
	close(next)
	wg.Wait()
}

// ShortestPathBatch answers a set of queries with the given algorithm,
// fanning them across a pool of workers goroutines (0 means GOMAXPROCS).
// Results are returned in input order.
//
// Deprecated: use QueryBatch; it adds per-request algorithm hints,
// tolerances, budgets and cooperative cancellation. ShortestPathBatch
// remains as a thin wrapper for one release.
func (e *Engine) ShortestPathBatch(alg Algorithm, queries []BatchQuery, workers int) []BatchResult {
	reqs := make([]QueryRequest, len(queries))
	for i, q := range queries {
		reqs[i] = QueryRequest{Source: q.S, Target: q.T, Alg: alg}
	}
	out := e.QueryBatch(context.Background(), reqs, workers)
	results := make([]BatchResult, len(queries))
	for i, r := range out {
		results[i] = BatchResult{Query: queries[i], Path: r.Result.Path, Stats: r.Result.Stats, Err: r.Err}
	}
	return results
}
