package core

import (
	"context"
	"runtime"
	"sync"
)

// runBatch fans n work items across a worker pool. Cancelling ctx stops
// feeding the pool; every unstarted item gets abandon(i) instead.
func runBatch(ctx context.Context, n, workers int, work func(i int), abandon func(i int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				work(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			// Stop feeding; mark this and every remaining item abandoned.
			for j := i; j < n; j++ {
				abandon(j)
			}
			break feed
		}
	}
	close(next)
	wg.Wait()
}
