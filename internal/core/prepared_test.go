package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rdb"
)

// TestEngineStatementsHitPlanCache checks the FEM loops execute through
// the plan cache: after the first search compiled its shapes, repeated
// searches are almost entirely cache hits, and the parse/plan duration
// stops growing with the workload.
func TestEngineStatementsHitPlanCache(t *testing.T) {
	g := graph.Power(400, 3, 5)
	e := newTestEngine(t, g, rdb.Options{}, Options{CacheSize: -1}) // no path cache: every query runs SQL
	q := graph.RandomQueries(g, 4, 9)

	if _, _, err := shortestPath(e, AlgBSDJ, q[0][0], q[0][1]); err != nil {
		t.Fatal(err)
	}
	warm := e.DB().Stats()
	for _, pair := range q {
		if _, _, err := shortestPath(e, AlgBSDJ, pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	st := e.DB().Stats()
	hits := st.PlanCacheHits - warm.PlanCacheHits
	misses := st.PlanCacheMisses - warm.PlanCacheMisses
	if hits == 0 {
		t.Fatal("repeated searches produced zero plan-cache hits")
	}
	if misses > hits/10 {
		t.Errorf("warm searches still compiling: %d misses vs %d hits", misses, hits)
	}
}

// TestLoadGraphInvalidatesPlans is the core-level dropped-heapfile test:
// LoadGraph drops and recreates every table, so every cached plan (and
// every engine-held prepared statement) must recompile — and queries on
// the new graph must be answered from the new tables.
func TestLoadGraphInvalidatesPlans(t *testing.T) {
	g1 := graph.Power(300, 3, 5)
	e := newTestEngine(t, g1, rdb.Options{}, Options{})
	q := graph.RandomQueries(g1, 2, 9)
	if _, _, err := shortestPath(e, AlgBSDJ, q[0][0], q[0][1]); err != nil {
		t.Fatal(err)
	}

	base := e.DB().Stats()
	// A different graph under the same table names.
	g2 := graph.Power(200, 2, 11)
	if err := e.LoadGraph(g2); err != nil {
		t.Fatal(err)
	}
	if st := e.DB().Stats(); st.SchemaEpoch <= base.SchemaEpoch {
		t.Fatalf("LoadGraph did not advance the schema epoch: %d -> %d", base.SchemaEpoch, st.SchemaEpoch)
	}
	// The engine's prepared handles were compiled against dropped tables;
	// they must transparently recompile, not read stale storage.
	p, _, err := shortestPath(e, AlgBSDJ, 0, 1)
	if err != nil {
		t.Fatalf("query after reload: %v", err)
	}
	if e.Nodes() != 200 {
		t.Fatalf("engine reports %d nodes after reload", e.Nodes())
	}
	_ = p
	if st := e.DB().Stats(); st.PlanCacheInvalidations == base.PlanCacheInvalidations {
		t.Error("expected plan invalidations after LoadGraph's table rebuild")
	}
}
