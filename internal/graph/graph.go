// Package graph provides the workload substrate: an in-memory weighted
// directed graph model, deterministic generators matching the paper's
// datasets (uniform Random graphs, Barabási–Albert Power graphs, and
// synthetic analogs of the DBLP / GoogleWeb / LiveJournal snapshots), CSV
// persistence, and the in-memory baselines MDJ (Dijkstra) and MBDJ
// (bi-directional Dijkstra) that Fig 8(d) compares against.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Edge is one weighted directed edge.
type Edge struct {
	From, To int64
	Weight   int64
}

// Graph is a weighted directed graph with node ids 0..N-1. Out and In
// adjacency lists are both kept: forward search expands outgoing edges,
// backward search incoming ones.
type Graph struct {
	N     int64
	Edges []Edge
	out   [][]halfEdge
	in    [][]halfEdge
	wmin  int64
}

type halfEdge struct {
	to int64
	w  int64
}

// New builds a graph from an edge list over n nodes.
func New(n int64, edges []Edge) (*Graph, error) {
	g := &Graph{N: n, Edges: edges}
	g.out = make([][]halfEdge, n)
	g.in = make([][]halfEdge, n)
	g.wmin = 1 << 62
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
		if e.Weight < 0 {
			return nil, fmt.Errorf("graph: negative weight %d on (%d,%d)", e.Weight, e.From, e.To)
		}
		g.out[e.From] = append(g.out[e.From], halfEdge{to: e.To, w: e.Weight})
		g.in[e.To] = append(g.in[e.To], halfEdge{to: e.From, w: e.Weight})
		if e.Weight < g.wmin {
			g.wmin = e.Weight
		}
	}
	if len(edges) == 0 {
		g.wmin = 1
	}
	return g, nil
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// WMin returns the minimal edge weight (1 when the graph has no edges).
func (g *Graph) WMin() int64 { return g.wmin }

// OutDegree returns a node's out-degree.
func (g *Graph) OutDegree(u int64) int { return len(g.out[u]) }

// OutEdges visits u's outgoing edges.
func (g *Graph) OutEdges(u int64, fn func(v, w int64)) {
	for _, e := range g.out[u] {
		fn(e.to, e.w)
	}
}

// InEdges visits u's incoming edges.
func (g *Graph) InEdges(u int64, fn func(v, w int64)) {
	for _, e := range g.in[u] {
		fn(e.to, e.w)
	}
}

// InsertEdge appends a directed (from, to, weight) edge, keeping the
// adjacency lists and the minimal weight in sync. The mirror accepts
// parallel edges, matching the relational TEdges heap.
func (g *Graph) InsertEdge(from, to, weight int64) error {
	if from < 0 || from >= g.N || to < 0 || to >= g.N {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.N)
	}
	if weight < 0 {
		return fmt.Errorf("graph: negative weight %d on (%d,%d)", weight, from, to)
	}
	g.Edges = append(g.Edges, Edge{From: from, To: to, Weight: weight})
	g.out[from] = append(g.out[from], halfEdge{to: to, w: weight})
	g.in[to] = append(g.in[to], halfEdge{to: from, w: weight})
	if weight < g.wmin {
		g.wmin = weight
	}
	return nil
}

// DeleteEdge removes every (from, to) edge — parallel edges included,
// mirroring Engine.DeleteEdge — and returns how many were removed. Deleting
// a pair with no edge is an error so differential tests catch divergence.
func (g *Graph) DeleteEdge(from, to int64) (int, error) {
	if from < 0 || from >= g.N || to < 0 || to >= g.N {
		return 0, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.N)
	}
	kept := g.Edges[:0]
	removed := 0
	for _, e := range g.Edges {
		if e.From == from && e.To == to {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	if removed == 0 {
		return 0, fmt.Errorf("graph: no edge (%d,%d)", from, to)
	}
	g.Edges = kept
	g.out[from] = dropHalf(g.out[from], to)
	g.in[to] = dropHalf(g.in[to], from)
	g.recomputeWMin()
	return removed, nil
}

// UpdateEdgeWeight sets the weight of every (from, to) edge to weight —
// parallel edges collapse to one effective cost, mirroring
// Engine.UpdateEdgeWeight — and returns how many rows changed.
func (g *Graph) UpdateEdgeWeight(from, to, weight int64) (int, error) {
	if from < 0 || from >= g.N || to < 0 || to >= g.N {
		return 0, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.N)
	}
	if weight < 0 {
		return 0, fmt.Errorf("graph: negative weight %d on (%d,%d)", weight, from, to)
	}
	updated := 0
	for i := range g.Edges {
		if g.Edges[i].From == from && g.Edges[i].To == to {
			g.Edges[i].Weight = weight
			updated++
		}
	}
	if updated == 0 {
		return 0, fmt.Errorf("graph: no edge (%d,%d)", from, to)
	}
	setHalf(g.out[from], to, weight)
	setHalf(g.in[to], from, weight)
	g.recomputeWMin()
	return updated, nil
}

// Clone deep-copies the graph so a mutation test can keep pre- and
// post-mutation mirrors side by side.
func (g *Graph) Clone() *Graph {
	c := &Graph{N: g.N, wmin: g.wmin}
	c.Edges = append([]Edge(nil), g.Edges...)
	c.out = make([][]halfEdge, g.N)
	c.in = make([][]halfEdge, g.N)
	for i := range g.out {
		c.out[i] = append([]halfEdge(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]halfEdge(nil), g.in[i]...)
	}
	return c
}

func dropHalf(list []halfEdge, to int64) []halfEdge {
	kept := list[:0]
	for _, h := range list {
		if h.to != to {
			kept = append(kept, h)
		}
	}
	return kept
}

func setHalf(list []halfEdge, to, w int64) {
	for i := range list {
		if list[i].to == to {
			list[i].w = w
		}
	}
}

func (g *Graph) recomputeWMin() {
	g.wmin = 1 << 62
	for _, e := range g.Edges {
		if e.Weight < g.wmin {
			g.wmin = e.Weight
		}
	}
	if len(g.Edges) == 0 {
		g.wmin = 1
	}
}

// WriteCSV streams the graph as "fid,tid,cost" lines preceded by a header
// comment carrying the node count.
func (g *Graph) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", e.From, e.To, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format.
func ReadCSV(r io.Reader) (*Graph, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<20)
	var n int64 = -1
	var edges []Edge
	var maxID int64
	for br.Scan() {
		line := strings.TrimSpace(br.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if i := strings.Index(line, "nodes="); i >= 0 {
				rest := line[i+len("nodes="):]
				if j := strings.IndexAny(rest, " \t"); j >= 0 {
					rest = rest[:j]
				}
				v, err := strconv.ParseInt(rest, 10, 64)
				if err == nil {
					n = v
				}
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("graph: bad CSV line %q", line)
		}
		f, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad fid in %q", line)
		}
		t, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad tid in %q", line)
		}
		w, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad cost in %q", line)
		}
		edges = append(edges, Edge{From: f, To: t, Weight: w})
		if f > maxID {
			maxID = f
		}
		if t > maxID {
			maxID = t
		}
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxID + 1
	}
	return New(n, edges)
}

// SaveFile writes the graph to path in CSV form.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return g.WriteCSV(f)
}

// LoadFile reads a CSV graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
