package graph

import (
	"math/rand"
)

// Weight range used throughout the paper's evaluation (§5.1): edge weights
// are assigned randomly in [1,100].
const (
	MinWeight = 1
	MaxWeight = 100
)

func randWeight(rng *rand.Rand) int64 {
	return MinWeight + rng.Int63n(MaxWeight-MinWeight+1)
}

// Random generates the paper's Random graph family: m edges whose endpoints
// are sampled uniformly among n nodes ("we randomly select the source and
// target node for m times among n nodes"). Self-loops are re-drawn;
// parallel edges may occur, as in the original procedure.
func Random(n int64, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := rng.Int63n(n)
		v := rng.Int63n(n)
		for v == u {
			v = rng.Int63n(n)
		}
		edges = append(edges, Edge{From: u, To: v, Weight: randWeight(rng)})
	}
	g, err := New(n, edges)
	if err != nil {
		panic(err) // generator invariants guarantee validity
	}
	return g
}

// RandomDegree generates a Random graph with average out-degree d (the
// paper's RandomxmNyd naming: x nodes, degree y).
func RandomDegree(n int64, d int, seed int64) *Graph {
	return Random(n, int(n)*d, seed)
}

// BarabasiAlbert generates the paper's Power graph family (Barabási Graph
// Generator): preferential attachment, each new node linking to d existing
// nodes with probability proportional to current degree. Both directions
// are emitted with independent weights so forward and backward searches see
// comparable frontiers, matching an undirected power-law network stored as
// directed edges.
func BarabasiAlbert(n int64, d int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	if n < 2 {
		g, _ := New(n, nil)
		return g
	}
	// targets[i] repeated by degree implements preferential attachment.
	var endpoints []int64
	edges := make([]Edge, 0, int(n)*d*2)
	addEdge := func(u, v int64) {
		edges = append(edges, Edge{From: u, To: v, Weight: randWeight(rng)})
		edges = append(edges, Edge{From: v, To: u, Weight: randWeight(rng)})
		endpoints = append(endpoints, u, v)
	}
	addEdge(0, 1)
	for u := int64(2); u < n; u++ {
		k := d
		if int64(k) >= u {
			k = int(u)
		}
		seen := make(map[int64]bool, k)
		for len(seen) < k {
			v := endpoints[rng.Intn(len(endpoints))]
			if v == u || seen[v] {
				// Fall back to a uniform draw to guarantee progress on
				// small prefixes.
				v = rng.Int63n(u)
				if v == u || seen[v] {
					continue
				}
			}
			seen[v] = true
			addEdge(u, v)
		}
	}
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Power is the paper's PowerxkNyd naming: BarabasiAlbert with d = y/2 so
// the average total degree is about y (each attachment adds both
// directions).
func Power(n int64, avgDegree int, seed int64) *Graph {
	d := avgDegree / 2
	if d < 1 {
		d = 1
	}
	return BarabasiAlbert(n, d, seed)
}

// DBLPLike is a synthetic substitute for the paper's DBLP co-authorship
// snapshot (312,967 nodes, 1,149,663 edges ≈ degree 3.7, mild skew,
// symmetric edges). Scale 1.0 reproduces those proportions; smaller scales
// shrink the node count, keeping the average degree.
func DBLPLike(scale float64, seed int64) *Graph {
	n := int64(float64(312967) * scale)
	if n < 100 {
		n = 100
	}
	// Co-authorship: mostly uniform collaboration plus a mild hub layer.
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	m := int(float64(n) * 1.85) // pairs; doubled below
	for i := 0; i < m; i++ {
		u := rng.Int63n(n)
		var v int64
		if rng.Float64() < 0.25 {
			v = rng.Int63n(n/10 + 1) // prolific authors
		} else {
			v = rng.Int63n(n)
		}
		if u == v {
			continue
		}
		edges = append(edges, Edge{From: u, To: v, Weight: randWeight(rng)})
		edges = append(edges, Edge{From: v, To: u, Weight: randWeight(rng)})
	}
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// GoogleWebLike is a synthetic substitute for the GoogleWeb snapshot
// (855,802 nodes, 5,066,842 edges ≈ degree 5.9, strongly skewed in-degree,
// directed). The skew is what makes its SegTable size sensitive to lthd
// (Fig 9(b) discussion).
func GoogleWebLike(scale float64, seed int64) *Graph {
	n := int64(float64(855802) * scale)
	if n < 100 {
		n = 100
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	m := int(float64(n) * 5.9)
	for i := 0; i < m; i++ {
		u := rng.Int63n(n)
		// Preferential-style target: squared draw skews toward low ids,
		// emulating heavy-tailed in-degree without tracking degrees.
		f := rng.Float64()
		v := int64(f * f * float64(n))
		if v >= n {
			v = n - 1
		}
		if u == v {
			continue
		}
		edges = append(edges, Edge{From: u, To: v, Weight: randWeight(rng)})
	}
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// LiveJournalLike is a synthetic substitute for the LiveJournal snapshot
// (4,847,571 nodes, 43,110,428 edges ≈ degree 8.9, social network with
// mostly reciprocated links).
func LiveJournalLike(scale float64, seed int64) *Graph {
	n := int64(float64(4847571) * scale)
	if n < 100 {
		n = 100
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	m := int(float64(n) * 4.45) // pairs; most reciprocated
	for i := 0; i < m; i++ {
		u := rng.Int63n(n)
		f := rng.Float64()
		v := int64(f * f * f * float64(n)) // stronger hub skew than web
		if rng.Float64() < 0.5 {
			v = rng.Int63n(n)
		}
		if v >= n {
			v = n - 1
		}
		if u == v {
			continue
		}
		edges = append(edges, Edge{From: u, To: v, Weight: randWeight(rng)})
		if rng.Float64() < 0.75 { // reciprocation rate
			edges = append(edges, Edge{From: v, To: u, Weight: randWeight(rng)})
		}
	}
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// RandomQueries draws q (source, target) pairs with distinct endpoints, the
// paper's workload ("we randomly generate 100 shortest path queries, and
// report the average time cost").
func RandomQueries(g *Graph, q int, seed int64) [][2]int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][2]int64, 0, q)
	for len(out) < q {
		s := rng.Int63n(g.N)
		t := rng.Int63n(g.N)
		if s == t {
			continue
		}
		out = append(out, [2]int64{s, t})
	}
	return out
}
