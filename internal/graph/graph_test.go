package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, []Edge{{From: 0, To: 5, Weight: 1}}); err == nil {
		t.Fatal("out-of-range edge must fail")
	}
	if _, err := New(2, []Edge{{From: 0, To: 1, Weight: -1}}); err == nil {
		t.Fatal("negative weight must fail")
	}
	g, err := New(3, nil)
	if err != nil || g.WMin() != 1 {
		t.Fatalf("empty graph: %v wmin=%d", err, g.WMin())
	}
}

func TestAdjacency(t *testing.T) {
	g, _ := New(3, []Edge{
		{From: 0, To: 1, Weight: 5},
		{From: 0, To: 2, Weight: 7},
		{From: 2, To: 0, Weight: 3},
	})
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 0 {
		t.Fatal("out degrees")
	}
	if g.WMin() != 3 {
		t.Fatalf("wmin: %d", g.WMin())
	}
	var ins []int64
	g.InEdges(0, func(v, w int64) { ins = append(ins, v) })
	if len(ins) != 1 || ins[0] != 2 {
		t.Fatalf("in edges: %v", ins)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Random(100, 300, 7)
	b := Random(100, 300, 7)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("nondeterministic edges")
		}
	}
	c := Random(100, 300, 8)
	same := true
	for i := range a.Edges {
		if a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestWeightsInRange(t *testing.T) {
	for _, g := range []*Graph{
		Random(200, 600, 1),
		Power(200, 3, 2),
		DBLPLike(0.001, 3),
		GoogleWebLike(0.0005, 4),
		LiveJournalLike(0.0001, 5),
	} {
		for _, e := range g.Edges {
			if e.Weight < MinWeight || e.Weight > MaxWeight {
				t.Fatalf("weight %d out of [1,100]", e.Weight)
			}
			if e.From == e.To {
				t.Fatalf("self loop %v", e)
			}
		}
	}
}

func TestPowerGraphSkew(t *testing.T) {
	g := Power(2000, 3, 11)
	maxDeg, sum := 0, 0
	for u := int64(0); u < g.N; u++ {
		d := g.OutDegree(u)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(g.N)
	if avg < 1.5 || avg > 6 {
		t.Fatalf("average degree off: %f", avg)
	}
	// Preferential attachment produces hubs far above the average.
	if float64(maxDeg) < 8*avg {
		t.Fatalf("no hubs: max=%d avg=%f", maxDeg, avg)
	}
}

func TestRandomDegree(t *testing.T) {
	g := RandomDegree(500, 3, 1)
	if g.M() != 1500 {
		t.Fatalf("edge count: %d", g.M())
	}
}

func TestCSVRoundtrip(t *testing.T) {
	g := Random(50, 150, 9)
	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.M() != g.M() {
		t.Fatalf("roundtrip size: %d/%d vs %d/%d", g2.N, g2.M(), g.N, g.M())
	}
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatal("roundtrip edges differ")
		}
	}
}

func TestCSVFileRoundtrip(t *testing.T) {
	g := Power(40, 3, 2)
	path := filepath.Join(t.TempDir(), "g.csv")
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.M() != g.M() {
		t.Fatal("file roundtrip size")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("1,2\n")); err == nil {
		t.Fatal("short line must fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,2,3\n")); err == nil {
		t.Fatal("bad fid must fail")
	}
	// Missing header: node count inferred from max id.
	g, err := ReadCSV(bytes.NewBufferString("0,4,7\n"))
	if err != nil || g.N != 5 {
		t.Fatalf("inferred n: %v %v", g, err)
	}
}

func TestMDJBasic(t *testing.T) {
	g, _ := New(4, []Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 1},
		{From: 0, To: 2, Weight: 5},
		{From: 2, To: 3, Weight: 1},
	})
	r := MDJ(g, 0, 3)
	if !r.Found || r.Distance != 3 {
		t.Fatalf("mdj: %+v", r)
	}
	want := []int64{0, 1, 2, 3}
	for i := range want {
		if r.Path[i] != want[i] {
			t.Fatalf("path: %v", r.Path)
		}
	}
	r = MDJ(g, 3, 0)
	if r.Found {
		t.Fatal("3->0 unreachable")
	}
	r = MDJ(g, 1, 1)
	if !r.Found || r.Distance != 0 || len(r.Path) != 1 {
		t.Fatalf("self path: %+v", r)
	}
}

func TestMBDJBasic(t *testing.T) {
	g, _ := New(4, []Edge{
		{From: 0, To: 1, Weight: 1},
		{From: 1, To: 2, Weight: 1},
		{From: 2, To: 3, Weight: 1},
	})
	r := MBDJ(g, 0, 3)
	if !r.Found || r.Distance != 3 || len(r.Path) != 4 {
		t.Fatalf("mbdj: %+v", r)
	}
	if r.Path[0] != 0 || r.Path[3] != 3 {
		t.Fatalf("endpoints: %v", r.Path)
	}
	if MBDJ(g, 3, 0).Found {
		t.Fatal("reverse unreachable")
	}
}

// TestQuickMDJvsMBDJ: both in-memory searches agree on random graphs, and
// recovered paths have exactly the reported length.
func TestQuickMDJvsMBDJ(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(20 + rng.Intn(60))
		g := Random(n, int(n)*3, seed)
		for trial := 0; trial < 5; trial++ {
			s, tt := rng.Int63n(n), rng.Int63n(n)
			a := MDJ(g, s, tt)
			b := MBDJ(g, s, tt)
			if a.Found != b.Found {
				return false
			}
			if !a.Found {
				continue
			}
			if a.Distance != b.Distance {
				return false
			}
			la, oka := g.PathLength(a.Path)
			lb, okb := g.PathLength(b.Path)
			if !oka || !okb || la != a.Distance || lb != b.Distance {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPathLength(t *testing.T) {
	g, _ := New(3, []Edge{
		{From: 0, To: 1, Weight: 2},
		{From: 0, To: 1, Weight: 1}, // parallel cheaper edge
		{From: 1, To: 2, Weight: 3},
	})
	l, ok := g.PathLength([]int64{0, 1, 2})
	if !ok || l != 4 { // picks the cheaper parallel edge
		t.Fatalf("path length: %d %v", l, ok)
	}
	if _, ok := g.PathLength([]int64{0, 2}); ok {
		t.Fatal("non-edge hop must fail")
	}
	if _, ok := g.PathLength(nil); ok {
		t.Fatal("empty path must fail")
	}
}

func TestRandomQueries(t *testing.T) {
	g := Random(50, 100, 3)
	qs := RandomQueries(g, 20, 4)
	if len(qs) != 20 {
		t.Fatalf("query count: %d", len(qs))
	}
	for _, q := range qs {
		if q[0] == q[1] || q[0] < 0 || q[0] >= g.N || q[1] < 0 || q[1] >= g.N {
			t.Fatalf("bad query: %v", q)
		}
	}
	// Deterministic per seed.
	qs2 := RandomQueries(g, 20, 4)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("queries nondeterministic")
		}
	}
}

func TestRealLikeSizes(t *testing.T) {
	d := DBLPLike(0.01, 1)
	if d.N < 3000 || d.N > 3200 {
		t.Fatalf("dblp scale: %d", d.N)
	}
	w := GoogleWebLike(0.01, 1)
	if w.N < 8000 || w.N > 9000 {
		t.Fatalf("web scale: %d", w.N)
	}
	l := LiveJournalLike(0.001, 1)
	if l.N < 4500 || l.N > 5000 {
		t.Fatalf("lj scale: %d", l.N)
	}
	// Average degrees roughly match the real datasets.
	if avg := float64(d.M()) / float64(d.N); avg < 2.5 || avg > 4.5 {
		t.Fatalf("dblp degree: %f", avg)
	}
	if avg := float64(w.M()) / float64(w.N); avg < 4.5 || avg > 7 {
		t.Fatalf("web degree: %f", avg)
	}
	if avg := float64(l.M()) / float64(l.N); avg < 6 || avg > 10 {
		t.Fatalf("lj degree: %f", avg)
	}
}
