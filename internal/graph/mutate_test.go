package graph

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The mutable-mirror tests: the in-memory graph must mutate exactly like
// the relational engine (all parallel edges per pair, wmin tracking) so
// the differential harness can trust it as the reference.

func mirrorGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := New(4, []Edge{
		{From: 0, To: 1, Weight: 2},
		{From: 0, To: 1, Weight: 7}, // parallel
		{From: 1, To: 2, Weight: 3},
		{From: 2, To: 3, Weight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMirrorInsertEdge(t *testing.T) {
	g := mirrorGraph(t)
	if err := g.InsertEdge(3, 0, 1); err != nil {
		t.Fatal(err)
	}
	if g.M() != 5 || g.WMin() != 1 {
		t.Fatalf("M=%d wmin=%d", g.M(), g.WMin())
	}
	found := false
	g.OutEdges(3, func(v, w int64) {
		if v == 0 && w == 1 {
			found = true
		}
	})
	if !found {
		t.Error("out-adjacency missing the new edge")
	}
	found = false
	g.InEdges(0, func(v, w int64) {
		if v == 3 && w == 1 {
			found = true
		}
	})
	if !found {
		t.Error("in-adjacency missing the new edge")
	}
	if err := g.InsertEdge(0, 9, 1); err == nil {
		t.Error("out-of-range insert must fail")
	}
	if err := g.InsertEdge(0, 1, -2); err == nil {
		t.Error("negative weight must fail")
	}
}

func TestMirrorDeleteEdge(t *testing.T) {
	g := mirrorGraph(t)
	n, err := g.DeleteEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("parallel delete removed %d edges, want 2", n)
	}
	if g.M() != 2 || g.OutDegree(0) != 0 {
		t.Fatalf("M=%d outdeg(0)=%d", g.M(), g.OutDegree(0))
	}
	if g.WMin() != 3 {
		t.Fatalf("wmin after deleting the minimum: %d", g.WMin())
	}
	g.InEdges(1, func(v, w int64) { t.Errorf("stale in-edge (%d,%d)", v, w) })
	if _, err := g.DeleteEdge(0, 1); err == nil {
		t.Error("deleting a missing pair must fail")
	}
	if _, err := g.DeleteEdge(0, 9); err == nil {
		t.Error("out-of-range delete must fail")
	}
	// Deleting every edge resets wmin to the empty-graph default.
	if _, err := g.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.DeleteEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 || g.WMin() != 1 {
		t.Fatalf("empty graph: M=%d wmin=%d", g.M(), g.WMin())
	}
}

func TestMirrorUpdateEdgeWeight(t *testing.T) {
	g := mirrorGraph(t)
	n, err := g.UpdateEdgeWeight(0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("parallel update changed %d edges, want 2", n)
	}
	if g.WMin() != 3 {
		t.Fatalf("wmin after raising the minimum: %d", g.WMin())
	}
	g.OutEdges(0, func(v, w int64) {
		if w != 5 {
			t.Errorf("out-edge weight %d, want 5", w)
		}
	})
	g.InEdges(1, func(v, w int64) {
		if w != 5 {
			t.Errorf("in-edge weight %d, want 5", w)
		}
	})
	if _, err := g.UpdateEdgeWeight(1, 0, 2); err == nil {
		t.Error("updating a missing pair must fail")
	}
	if _, err := g.UpdateEdgeWeight(0, 1, -1); err == nil {
		t.Error("negative weight must fail")
	}
	// MDJ must see the new weights immediately.
	res := MDJ(g, 0, 3)
	if !res.Found || res.Distance != 12 {
		t.Fatalf("distance after update: %+v", res)
	}
}

func TestMirrorClone(t *testing.T) {
	g := mirrorGraph(t)
	c := g.Clone()
	if _, err := g.DeleteEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.InsertEdge(3, 0, 1); err != nil {
		t.Fatal(err)
	}
	if c.M() != 4 || c.WMin() != 2 {
		t.Fatalf("clone mutated alongside the original: M=%d wmin=%d", c.M(), c.WMin())
	}
	res := MDJ(c, 0, 3)
	if !res.Found || res.Distance != 9 {
		t.Fatalf("clone distances off: %+v", res)
	}
}

// TestReadCSVErrorPaths is the table-driven failure-branch suite for the
// CSV reader: every malformed shape must produce a descriptive error, and
// the documented lenient cases (duplicate/parallel edges, header-derived
// node counts) must stay accepted.
func TestReadCSVErrorPaths(t *testing.T) {
	for _, tc := range []struct {
		name    string
		in      string
		wantErr string // substring; empty means success
		nodes   int64
		edges   int
	}{
		{name: "ok with header", in: "# nodes=5 edges=1\n0,4,7\n", nodes: 5, edges: 1},
		{name: "ok without header", in: "0,4,7\n", nodes: 5, edges: 1},
		{name: "blank lines skipped", in: "\n0,1,2\n\n1,0,2\n", nodes: 2, edges: 2},
		{name: "duplicate edges accepted", in: "0,1,3\n0,1,3\n0,1,9\n", nodes: 2, edges: 3},
		{name: "zero weight accepted", in: "0,1,0\n", nodes: 2, edges: 1},
		{name: "empty input", in: "", nodes: 1, edges: 0},
		{name: "bad arity short", in: "0,1\n", wantErr: "bad CSV line"},
		{name: "bad arity long", in: "0,1,2,3\n", wantErr: "bad CSV line"},
		{name: "bad fid", in: "x,1,2\n", wantErr: "bad fid"},
		{name: "bad tid", in: "0,y,2\n", wantErr: "bad tid"},
		{name: "bad cost", in: "0,1,z\n", wantErr: "bad cost"},
		{name: "negative weight", in: "0,1,-4\n", wantErr: "negative weight"},
		{name: "edge beyond declared nodes", in: "# nodes=2\n0,5,1\n", wantErr: "out of range"},
		{name: "negative node id", in: "-1,0,1\n", wantErr: "out of range"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ReadCSV(strings.NewReader(tc.in))
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("expected error containing %q, got graph %+v", tc.wantErr, g)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if g.N != tc.nodes || g.M() != tc.edges {
				t.Fatalf("N=%d M=%d, want N=%d M=%d", g.N, g.M(), tc.nodes, tc.edges)
			}
		})
	}
}

// TestLoadFileErrorPaths: the file wrapper surfaces both I/O and parse
// failures.
func TestLoadFileErrorPaths(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil || !strings.Contains(err.Error(), "bad CSV line") {
		t.Errorf("parse failure must propagate, got %v", err)
	}
}
