package graph

import (
	"container/heap"
)

// Infinity is the sentinel distance for unreachable nodes.
const Infinity = int64(1) << 50

// PathResult reports one shortest-path computation.
type PathResult struct {
	Found    bool
	Distance int64
	Path     []int64 // node ids s..t, empty when !Found
	Visited  int     // settled nodes (search-space metric)
}

// pqItem is a priority-queue entry.
type pqItem struct {
	node int64
	dist int64
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// MDJ is the in-memory single-directional Dijkstra baseline (the paper's
// MDJ competitor). It stops as soon as t is settled.
func MDJ(g *Graph, s, t int64) PathResult {
	dist := map[int64]int64{s: 0}
	parent := map[int64]int64{s: s}
	done := map[int64]bool{}
	q := &pq{{node: s, dist: 0}}
	visited := 0
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		visited++
		if u == t {
			return PathResult{Found: true, Distance: it.dist, Path: buildPath(parent, s, t), Visited: visited}
		}
		g.OutEdges(u, func(v, w int64) {
			nd := it.dist + w
			if d, ok := dist[v]; !ok || nd < d {
				dist[v] = nd
				parent[v] = u
				heap.Push(q, pqItem{node: v, dist: nd})
			}
		})
	}
	return PathResult{Found: false, Distance: Infinity, Visited: visited}
}

func buildPath(parent map[int64]int64, s, t int64) []int64 {
	var rev []int64
	for x := t; ; x = parent[x] {
		rev = append(rev, x)
		if x == s {
			break
		}
	}
	out := make([]int64, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// MBDJ is the in-memory bi-directional Dijkstra baseline (the paper's MBDJ
// competitor): forward search over outgoing edges, backward over incoming,
// terminating when topF + topB >= the best meeting distance.
func MBDJ(g *Graph, s, t int64) PathResult {
	if s == t {
		return PathResult{Found: true, Distance: 0, Path: []int64{s}, Visited: 1}
	}
	distF := map[int64]int64{s: 0}
	distB := map[int64]int64{t: 0}
	parF := map[int64]int64{s: s}
	parB := map[int64]int64{t: t}
	doneF := map[int64]bool{}
	doneB := map[int64]bool{}
	qf := &pq{{node: s, dist: 0}}
	qb := &pq{{node: t, dist: 0}}
	best := Infinity
	var meet int64 = -1
	visited := 0

	update := func(x int64) {
		df, okf := distF[x]
		db, okb := distB[x]
		if okf && okb && df+db < best {
			best = df + db
			meet = x
		}
	}

	for qf.Len() > 0 || qb.Len() > 0 {
		topF, topB := Infinity, Infinity
		if qf.Len() > 0 {
			topF = (*qf)[0].dist
		}
		if qb.Len() > 0 {
			topB = (*qb)[0].dist
		}
		if topF+topB >= best {
			break
		}
		if topF <= topB && qf.Len() > 0 {
			it := heap.Pop(qf).(pqItem)
			u := it.node
			if doneF[u] {
				continue
			}
			doneF[u] = true
			visited++
			g.OutEdges(u, func(v, w int64) {
				nd := it.dist + w
				if d, ok := distF[v]; !ok || nd < d {
					distF[v] = nd
					parF[v] = u
					heap.Push(qf, pqItem{node: v, dist: nd})
					update(v)
				}
			})
		} else if qb.Len() > 0 {
			it := heap.Pop(qb).(pqItem)
			u := it.node
			if doneB[u] {
				continue
			}
			doneB[u] = true
			visited++
			g.InEdges(u, func(v, w int64) {
				nd := it.dist + w
				if d, ok := distB[v]; !ok || nd < d {
					distB[v] = nd
					parB[v] = u
					heap.Push(qb, pqItem{node: v, dist: nd})
					update(v)
				}
			})
		} else {
			break
		}
	}
	if meet < 0 {
		return PathResult{Found: false, Distance: Infinity, Visited: visited}
	}
	half1 := buildPath(parF, s, meet)
	var half2 []int64
	for x := meet; x != t; x = parB[x] {
		half2 = append(half2, parB[x])
	}
	path := append(half1, half2...)
	return PathResult{Found: true, Distance: best, Path: path, Visited: visited}
}

// PathLength sums the cheapest-edge weights along a node sequence,
// returning ok=false if some hop has no edge. Used by tests to validate
// recovered paths against the graph.
func (g *Graph) PathLength(path []int64) (int64, bool) {
	if len(path) == 0 {
		return 0, false
	}
	var total int64
	for i := 0; i+1 < len(path); i++ {
		w := int64(-1)
		g.OutEdges(path[i], func(v, ew int64) {
			if v == path[i+1] && (w < 0 || ew < w) {
				w = ew
			}
		})
		if w < 0 {
			return 0, false
		}
		total += w
	}
	return total, true
}
