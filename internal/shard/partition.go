// Package shard scales the relational FEM search horizontally: the node
// set is partitioned across k independent core.Engine instances and the
// frontier-expansion loop runs Pregel-style supersteps — every shard
// expands its local slice of the frontier in parallel with the paper's
// prepared statements, and the coordinator exchanges boundary-node
// (nid, parent, cost) candidates between supersteps, terminating on the
// same §4.1 stopping condition evaluated over the global minima. A small
// cut-vertex sketch (precomputed portal distances) gives an admissible
// upper bound that prunes supersteps which cannot improve the answer.
package shard

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Strategy picks how node ids map to shards.
type Strategy int

const (
	// Hash assigns nid % k: consecutive ids round-robin across shards, so
	// any locally dense frontier spreads over every shard — maximum
	// intra-query parallelism at the price of more cut edges.
	Hash Strategy = iota
	// Range assigns contiguous blocks of ceil(N/k) ids per shard: id-local
	// structure (generated graphs wire mostly nearby ids) stays intra-shard,
	// minimizing cut edges at the price of frontier skew — a frontier
	// confined to one block keeps the other shards idle.
	Range
)

// ParseStrategy resolves the -partition flag values.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "hash":
		return Hash, nil
	case "range":
		return Range, nil
	}
	return 0, fmt.Errorf("shard: unknown partition strategy %q (want hash or range)", s)
}

func (s Strategy) String() string {
	switch s {
	case Hash:
		return "hash"
	case Range:
		return "range"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Partition is a deterministic node-to-shard map over ids 0..N-1.
type Partition struct {
	K        int
	N        int64
	Strategy Strategy
	block    int64 // Range block width, ceil(N/K)
}

// NewPartition validates and builds the map.
func NewPartition(n int64, k int, strat Strategy) (Partition, error) {
	if k < 1 {
		return Partition{}, fmt.Errorf("shard: shard count must be >= 1, got %d", k)
	}
	if n < 1 {
		return Partition{}, fmt.Errorf("shard: node count must be >= 1, got %d", n)
	}
	if strat != Hash && strat != Range {
		return Partition{}, fmt.Errorf("shard: invalid strategy %d", int(strat))
	}
	p := Partition{K: k, N: n, Strategy: strat}
	p.block = (n + int64(k) - 1) / int64(k)
	return p, nil
}

// Owner returns the shard owning node nid.
func (p Partition) Owner(nid int64) int {
	if p.Strategy == Hash {
		return int(nid % int64(p.K))
	}
	o := int(nid / p.block)
	if o >= p.K { // only reachable for nid >= N; clamp defensively
		o = p.K - 1
	}
	return o
}

// Split is the partitioned edge set: per-shard edge lists plus the cut
// structure the sketch builds on.
type Split struct {
	// Edges[i] holds every edge owned by shard i (Owner(From) == i) plus a
	// mirror of every cut edge whose head it owns (Owner(To) == i): forward
	// expansion relaxes a node's out-edges in its owner shard, backward
	// expansion needs the in-edges of owned nodes present locally too.
	Edges [][]graph.Edge
	// CutEdges counts edges whose endpoints live in different shards (each
	// is stored twice, once per endpoint shard).
	CutEdges int
	// CutVertices lists, in ascending order, every node incident to a cut
	// edge — the portal candidates for the boundary-distance sketch.
	CutVertices []int64
}

// SplitEdges assigns every edge of g to its endpoint shards. Each edge is
// owned by exactly one shard (the tail's); cut edges are mirrored into the
// head's shard so both directions of expansion see them. Deterministic:
// same graph + same partition => same per-shard lists in the same order.
func (p Partition) SplitEdges(g *graph.Graph) *Split {
	sp := &Split{Edges: make([][]graph.Edge, p.K)}
	cut := make(map[int64]struct{})
	for _, e := range g.Edges {
		os, od := p.Owner(e.From), p.Owner(e.To)
		sp.Edges[os] = append(sp.Edges[os], e)
		if od != os {
			sp.Edges[od] = append(sp.Edges[od], e)
			sp.CutEdges++
			cut[e.From] = struct{}{}
			cut[e.To] = struct{}{}
		}
	}
	sp.CutVertices = make([]int64, 0, len(cut))
	for v := range cut {
		sp.CutVertices = append(sp.CutVertices, v)
	}
	sort.Slice(sp.CutVertices, func(i, j int) bool { return sp.CutVertices[i] < sp.CutVertices[j] })
	return sp
}
