package shard

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// benchLikeGraph mirrors the parallel-bench workload shape: a weighted
// ring with chord edges at several strides, so both partition strategies
// see realistic cut structure.
func benchLikeGraph(t *testing.T, n int64) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for i := int64(0); i < n; i++ {
		edges = append(edges, graph.Edge{From: i, To: (i + 1) % n, Weight: 1 + i%5})
		edges = append(edges, graph.Edge{From: i, To: (i + 8) % n, Weight: 6 + i%7})
		if i%4 == 0 {
			edges = append(edges, graph.Edge{From: i, To: (i + 64) % n, Weight: 40 + i%9})
		}
	}
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionDeterminism(t *testing.T) {
	g := benchLikeGraph(t, 1024)
	for _, strat := range []Strategy{Hash, Range} {
		p1, err := NewPartition(g.N, 4, strat)
		if err != nil {
			t.Fatal(err)
		}
		p2, _ := NewPartition(g.N, 4, strat)
		s1, s2 := p1.SplitEdges(g), p2.SplitEdges(g)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%v: SplitEdges not deterministic", strat)
		}
		for nid := int64(0); nid < g.N; nid++ {
			if p1.Owner(nid) != p2.Owner(nid) {
				t.Fatalf("%v: Owner(%d) not deterministic", strat, nid)
			}
		}
	}
}

// TestPartitionBalance: hash keeps the owned-node counts within 10% of
// each other on the bench graph (it is a congruence map, so they differ by
// at most one), and range blocks are contiguous.
func TestPartitionBalance(t *testing.T) {
	g := benchLikeGraph(t, 1030) // deliberately not divisible by k
	for _, k := range []int{2, 3, 4, 7} {
		p, err := NewPartition(g.N, k, Hash)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, k)
		for nid := int64(0); nid < g.N; nid++ {
			counts[p.Owner(nid)]++
		}
		lo, hi := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if float64(hi-lo) > 0.1*float64(lo) {
			t.Fatalf("hash k=%d: node counts %v exceed 10%% imbalance", k, counts)
		}
	}

	p, err := NewPartition(g.N, 4, Range)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for nid := int64(0); nid < g.N; nid++ {
		o := p.Owner(nid)
		if o < prev || o >= 4 {
			t.Fatalf("range: Owner(%d) = %d not contiguous non-decreasing", nid, o)
		}
		prev = o
	}
}

// TestSplitEdgesCoverage: every edge is owned by exactly its tail's shard,
// cut edges appear in both endpoint shards (and only those), and the
// total appearance count is M + cutEdges.
func TestSplitEdgesCoverage(t *testing.T) {
	g := benchLikeGraph(t, 512)
	for _, strat := range []Strategy{Hash, Range} {
		for _, k := range []int{1, 2, 4} {
			p, err := NewPartition(g.N, k, strat)
			if err != nil {
				t.Fatal(err)
			}
			sp := p.SplitEdges(g)
			if len(sp.Edges) != k {
				t.Fatalf("%v k=%d: %d shard lists", strat, k, len(sp.Edges))
			}
			type key struct{ f, to, w int64 }
			appear := map[key]map[int]int{}
			total := 0
			for i, list := range sp.Edges {
				for _, e := range list {
					kk := key{e.From, e.To, e.Weight}
					if appear[kk] == nil {
						appear[kk] = map[int]int{}
					}
					appear[kk][i]++
					total++
				}
			}
			if total != g.M()+sp.CutEdges {
				t.Fatalf("%v k=%d: %d stored edges, want M=%d + cut=%d", strat, k, total, g.M(), sp.CutEdges)
			}
			wantCut := 0
			for _, e := range g.Edges {
				os, od := p.Owner(e.From), p.Owner(e.To)
				shards := appear[key{e.From, e.To, e.Weight}]
				if shards[os] != 1 {
					t.Fatalf("%v k=%d: edge (%d,%d) appears %d times in owner shard %d, want 1",
						strat, k, e.From, e.To, shards[os], os)
				}
				if os == od {
					if len(shards) != 1 {
						t.Fatalf("%v k=%d: intra-shard edge (%d,%d) stored in shards %v", strat, k, e.From, e.To, shards)
					}
				} else {
					wantCut++
					if len(shards) != 2 || shards[od] != 1 {
						t.Fatalf("%v k=%d: cut edge (%d,%d) stored in %v, want shards %d and %d once each",
							strat, k, e.From, e.To, shards, os, od)
					}
				}
			}
			if wantCut != sp.CutEdges {
				t.Fatalf("%v k=%d: CutEdges=%d, counted %d", strat, k, sp.CutEdges, wantCut)
			}
			if k == 1 && (sp.CutEdges != 0 || len(sp.CutVertices) != 0) {
				t.Fatalf("k=1 must have no cut: %d edges, %d vertices", sp.CutEdges, len(sp.CutVertices))
			}
			for i := 1; i < len(sp.CutVertices); i++ {
				if sp.CutVertices[i-1] >= sp.CutVertices[i] {
					t.Fatalf("%v k=%d: CutVertices not strictly ascending", strat, k)
				}
			}
		}
	}
}

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]Strategy{"hash": Hash, "Range": Range, " HASH ": Hash} {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("modulo"); err == nil {
		t.Fatal("ParseStrategy accepted garbage")
	}
	if _, err := NewPartition(100, 0, Hash); err == nil {
		t.Fatal("NewPartition accepted k=0")
	}
}
