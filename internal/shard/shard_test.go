package shard

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
)

// islandsGraph builds two disconnected weighted ring-with-chords islands
// so random pairs include reachable, unreachable (cross-island) and
// asymmetric (directed ring) cases.
func islandsGraph(t *testing.T, island int64) *graph.Graph {
	t.Helper()
	n := 2 * island
	var edges []graph.Edge
	for _, base := range []int64{0, island} {
		for i := int64(0); i < island; i++ {
			at := func(off int64) int64 { return base + (i+off)%island }
			edges = append(edges, graph.Edge{From: base + i, To: at(1), Weight: 1 + i%3})
			edges = append(edges, graph.Edge{From: base + i, To: at(5), Weight: 4 + i%4})
			if i%3 == 0 {
				edges = append(edges, graph.Edge{From: base + i, To: at(17), Weight: 11 + i%5})
			}
		}
	}
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// refEngine is the unsharded oracle: one engine over the full graph.
func refEngine(t *testing.T, g *graph.Graph, lthd int64) *core.Engine {
	t.Helper()
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	e := core.NewEngine(db, core.Options{CacheSize: -1})
	if err := e.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	if lthd > 0 {
		if _, err := e.BuildSegTable(lthd); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// mixedPairs draws count (s, t) pairs: mostly random (some of which cross
// islands and are unreachable), plus guaranteed s==t and cross-island
// entries up front.
func mixedPairs(rng *rand.Rand, n int64, count int) [][2]int64 {
	pairs := make([][2]int64, 0, count)
	half := n / 2
	pairs = append(pairs,
		[2]int64{7 % n, 7 % n},       // s == t
		[2]int64{0, 0},               // s == t at the boundary
		[2]int64{1, half + 1},        // unreachable: island 0 -> 1
		[2]int64{half + 2, 2},        // unreachable: island 1 -> 0
		[2]int64{half - 1, half % n}, // unreachable across the cut
	)
	for len(pairs) < count {
		pairs = append(pairs, [2]int64{rng.Int63n(n), rng.Int63n(n)})
	}
	return pairs
}

// runDifferential compares the sharded coordinator against the unsharded
// engine on every pair: identical Found and Distance, and every sharded
// path must be a real path of exactly that length.
func runDifferential(t *testing.T, g *graph.Graph, ref *core.Engine, se *ShardedEngine,
	alg core.Algorithm, pairs [][2]int64) {
	t.Helper()
	ctx := context.Background()
	for _, pr := range pairs {
		s, tt := pr[0], pr[1]
		want, err := ref.Query(ctx, core.QueryRequest{Source: s, Target: tt, Alg: alg})
		if err != nil {
			t.Fatalf("%v ref (%d,%d): %v", alg, s, tt, err)
		}
		got, err := se.Query(ctx, core.QueryRequest{Source: s, Target: tt, Alg: alg})
		if err != nil {
			t.Fatalf("%v sharded (%d,%d): %v", alg, s, tt, err)
		}
		if got.Found != want.Found {
			t.Fatalf("%v (%d,%d): sharded Found=%v, unsharded %v", alg, s, tt, got.Found, want.Found)
		}
		if got.Distance != want.Distance {
			t.Fatalf("%v (%d,%d): sharded distance %d, unsharded %d", alg, s, tt, got.Distance, want.Distance)
		}
		if !got.Found {
			continue
		}
		nodes := got.Path.Nodes
		if len(nodes) == 0 || nodes[0] != s || nodes[len(nodes)-1] != tt {
			t.Fatalf("%v (%d,%d): bad path endpoints %v", alg, s, tt, nodes)
		}
		if l, ok := g.PathLength(nodes); !ok || l != got.Distance {
			t.Fatalf("%v (%d,%d): path length %d (valid=%v), want %d", alg, s, tt, l, ok, got.Distance)
		}
	}
}

// TestShardedDifferential: >= 200 mixed pairs across every coordinator
// algorithm, shard counts and both partition strategies, against the
// unsharded engine. Runs under -race in CI.
func TestShardedDifferential(t *testing.T) {
	const lthd = 8
	g := islandsGraph(t, 100)
	ref := refEngine(t, g, lthd)
	rng := rand.New(rand.NewSource(7))

	cases := []struct {
		name  string
		alg   core.Algorithm
		opts  Options
		pairs int
	}{
		{"BSDJ/k3/hash", core.AlgBSDJ, Options{Shards: 3}, 60},
		{"BBFS/k3/hash", core.AlgBBFS, Options{Shards: 3}, 40},
		{"BSEG/k3/hash", core.AlgBSEG, Options{Shards: 3, Lthd: lthd}, 60},
		{"BSDJ/k2/range", core.AlgBSDJ, Options{Shards: 2, Strategy: Range}, 20},
		{"BSEG/k4/range", core.AlgBSEG, Options{Shards: 4, Strategy: Range, Lthd: lthd}, 20},
		// Sketch on: the portal bound may answer some pairs outright; the
		// answers must stay exact.
		{"AUTO/k4/hash/sketch", core.AlgAuto, Options{Shards: 4, Lthd: lthd, Portals: 12}, 24},
	}
	total := 0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			se, err := Open(g, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer se.Close()
			refAlg := tc.alg
			if refAlg == core.AlgAuto {
				refAlg = core.AlgBSEG // what the shard planner resolves to here
			}
			runDifferential(t, g, ref, se, refAlg, mixedPairs(rng, g.N, tc.pairs))
		})
		total += tc.pairs
	}
	if total < 200 {
		t.Fatalf("differential covered %d pairs, want >= 200", total)
	}
}

// TestShardedAuto pins the coordinator's planner: AlgAuto resolves to BSEG
// when the shard SegTables exist and BSDJ otherwise, recorded in
// Stats.Planner.
func TestShardedAuto(t *testing.T) {
	g := islandsGraph(t, 60)
	for _, tc := range []struct {
		lthd int64
		want string
	}{{8, "shard-bseg"}, {0, "shard-bsdj"}} {
		se, err := Open(g, Options{Shards: 2, Lthd: tc.lthd})
		if err != nil {
			t.Fatal(err)
		}
		res, err := se.Query(context.Background(), core.QueryRequest{Source: 3, Target: 41})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Planner != tc.want {
			t.Fatalf("lthd=%d: planner %q, want %q", tc.lthd, res.Stats.Planner, tc.want)
		}
		se.Close()
	}
}

// TestShardedRejections: unsupported algorithms fail with the typed
// sentinel, out-of-range endpoints fail, BSEG without SegTables fails.
func TestShardedRejections(t *testing.T) {
	g := islandsGraph(t, 40)
	se, err := Open(g, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	ctx := context.Background()
	for _, alg := range []core.Algorithm{core.AlgDJ, core.AlgBDJ, core.AlgALT, core.AlgLabel} {
		_, err := se.Query(ctx, core.QueryRequest{Source: 0, Target: 1, Alg: alg})
		if !errors.Is(err, ErrUnsupportedAlgorithm) {
			t.Fatalf("%v: err = %v, want ErrUnsupportedAlgorithm", alg, err)
		}
	}
	if _, err := se.Query(ctx, core.QueryRequest{Source: 0, Target: 1, Alg: core.AlgBSEG}); err == nil {
		t.Fatal("BSEG without SegTables must fail")
	}
	if _, err := se.Query(ctx, core.QueryRequest{Source: -1, Target: 1}); err == nil {
		t.Fatal("negative source must fail")
	}
	if _, err := se.Query(ctx, core.QueryRequest{Source: 0, Target: g.N}); err == nil {
		t.Fatal("out-of-range target must fail")
	}
}

// TestShardedCancellation: a cancelled context kills the coordinator
// within a superstep and releases every shard's gate (a follow-up query
// succeeds).
func TestShardedCancellation(t *testing.T) {
	g := islandsGraph(t, 80)
	se, err := Open(g, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := se.Query(ctx, core.QueryRequest{Source: 0, Target: 50}); err == nil {
		t.Fatal("cancelled query must fail")
	}
	if _, err := se.Query(context.Background(), core.QueryRequest{Source: 0, Target: 50}); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

// TestShardedBatchAndStats: the batch surface answers in order and the
// stats counters move.
func TestShardedBatchAndStats(t *testing.T) {
	g := islandsGraph(t, 60)
	se, err := Open(g, Options{Shards: 2, Lthd: 8, Portals: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	reqs := []core.QueryRequest{
		{Source: 0, Target: 30},
		{Source: 5, Target: 5},
		{Source: 2, Target: 90}, // unreachable
	}
	out := se.QueryBatch(context.Background(), reqs, 2)
	if len(out) != 3 {
		t.Fatalf("batch returned %d results", len(out))
	}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("batch[%d]: %v", i, r.Err)
		}
	}
	if !out[0].Result.Found || !out[1].Result.Found || out[2].Result.Found {
		t.Fatalf("batch found flags: %v %v %v", out[0].Result.Found, out[1].Result.Found, out[2].Result.Found)
	}
	st := se.Stats()
	if st.Queries < 3 || st.Supersteps == 0 || st.Shards != 2 {
		t.Fatalf("stats did not move: %+v", st)
	}
	if st.CutEdges == 0 || len(st.PerShard) != 2 {
		t.Fatalf("partition stats missing: %+v", st)
	}
}
