package shard

import (
	"container/heap"

	"repro/internal/graph"
)

// Boundary-distance sketch ("Query-by-Sketch", PAPERS.md): a deterministic
// sample of cut vertices ("portals") with exact one-to-all distances from
// and to each, precomputed in memory at load time. For a query (s, t),
//
//	bound = min over portals c of  d(s, c) + d(c, t)
//
// is the length of a real s->c->t walk in the full graph, so it is an
// admissible UPPER bound on d(s, t). The coordinator folds it into the
// stopping condition and the Theorem-1 prune: supersteps that cannot beat
// the bound terminate early, and when the bound itself is the answer the
// path is stitched from the portal's two shortest-path trees without
// touching the relational tables at all.
//
// The sketch never makes an answer inexact: termination at
// lf+lb >= bound certifies every undiscovered path is >= bound, and the
// portal walk achieves it.

type sketch struct {
	portals []int64
	// toDist[i][v] = d(v, portals[i]); toNext[i][v] = successor of v on a
	// shortest v->portal path (the parent in a reverse-graph Dijkstra).
	toDist [][]int64
	toNext [][]int64
	// fromDist[i][v] = d(portals[i], v); fromPar[i][v] = predecessor of v
	// on a shortest portal->v path.
	fromDist [][]int64
	fromPar  [][]int64
}

// buildSketch samples up to limit portals from the cut-vertex list (evenly
// strided over the sorted list, so the choice is deterministic) and runs
// one forward and one backward Dijkstra per portal on the full graph.
func buildSketch(g *graph.Graph, cutVertices []int64, limit int) *sketch {
	if limit <= 0 || len(cutVertices) == 0 {
		return nil
	}
	portals := cutVertices
	if len(portals) > limit {
		sampled := make([]int64, 0, limit)
		stride := float64(len(portals)) / float64(limit)
		for i := 0; i < limit; i++ {
			sampled = append(sampled, portals[int(float64(i)*stride)])
		}
		portals = sampled
	}
	sk := &sketch{
		portals:  portals,
		toDist:   make([][]int64, len(portals)),
		toNext:   make([][]int64, len(portals)),
		fromDist: make([][]int64, len(portals)),
		fromPar:  make([][]int64, len(portals)),
	}
	for i, c := range portals {
		sk.fromDist[i], sk.fromPar[i] = oneToAll(g, c, true)
		sk.toDist[i], sk.toNext[i] = oneToAll(g, c, false)
	}
	return sk
}

// Bound returns the best portal upper bound on d(s, t) and the achieving
// portal index; ok=false when no portal connects s to t.
func (sk *sketch) Bound(s, t int64) (int64, int, bool) {
	best, bestIdx := int64(0), -1
	for i := range sk.portals {
		ds, dt := sk.toDist[i][s], sk.fromDist[i][t]
		if ds >= graph.Infinity || dt >= graph.Infinity {
			continue
		}
		if bestIdx < 0 || ds+dt < best {
			best, bestIdx = ds+dt, i
		}
	}
	return best, bestIdx, bestIdx >= 0
}

// Path stitches the s -> portal -> t walk for portal index pi out of the
// precomputed trees. The two halves are shortest paths, so when Bound(s,t)
// equals d(s,t) the walk is a shortest s-t path.
func (sk *sketch) Path(s, t int64, pi int) []int64 {
	c := sk.portals[pi]
	nodes := []int64{s}
	for cur := s; cur != c; {
		cur = sk.toNext[pi][cur]
		nodes = append(nodes, cur)
	}
	// Walk t back to the portal, then reverse in place onto the prefix.
	mark := len(nodes)
	for cur := t; cur != c; cur = sk.fromPar[pi][cur] {
		nodes = append(nodes, cur)
	}
	for i, j := mark, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	return nodes
}

// oneToAll is a one-to-all Dijkstra from src over the full graph: forward
// follows out-edges (dist[v] = d(src, v), link[v] = predecessor on the
// tree path), backward follows in-edges (dist[v] = d(v, src), link[v] =
// successor toward src). Unreachable nodes keep graph.Infinity / -1.
func oneToAll(g *graph.Graph, src int64, forward bool) (dist, link []int64) {
	dist = make([]int64, g.N)
	link = make([]int64, g.N)
	for i := range dist {
		dist[i] = graph.Infinity
		link[i] = -1
	}
	dist[src] = 0
	done := make([]bool, g.N)
	pq := &skHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(skItem)
		if done[it.nid] {
			continue
		}
		done[it.nid] = true
		relax := func(v, w int64) {
			if nd := it.dist + w; nd < dist[v] {
				dist[v] = nd
				link[v] = it.nid
				heap.Push(pq, skItem{v, nd})
			}
		}
		if forward {
			g.OutEdges(it.nid, relax)
		} else {
			g.InEdges(it.nid, relax)
		}
	}
	return dist, link
}

type skItem struct {
	nid  int64
	dist int64
}

type skHeap []skItem

func (h skHeap) Len() int           { return len(h) }
func (h skHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h skHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *skHeap) Push(x any)        { *h = append(*h, x.(skItem)) }
func (h *skHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
