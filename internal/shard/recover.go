package shard

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// Cross-shard path recovery. Every visited-table row consulted here lives
// in the node's OWNER shard: owner rows receive every routed candidate, so
// at termination they hold the exact global distances and the parent links
// that produced them — walking the chains at owners is therefore walking
// one global shortest-path tree, even when consecutive hops were
// discovered by different shards.

// stitchPath locates a meeting node achieving minCost and concatenates the
// two half-paths, unfolding BSEG segments in whichever shard recorded them
// at the exact distance difference.
func (se *ShardedEngine) stitchPath(ctx context.Context, sts []*core.Superstep, s, t, minCost int64, segs bool) ([]int64, error) {
	meet := int64(-1)
	for _, ss := range sts {
		m, ok, err := ss.MeetNode(ctx, minCost)
		if err != nil {
			return nil, err
		}
		if ok {
			meet = m
			break
		}
	}
	if meet < 0 {
		return nil, fmt.Errorf("shard: no meeting node for minCost=%d", minCost)
	}
	fwd, err := se.walkChain(ctx, sts, s, meet, true, segs)
	if err != nil {
		return nil, err
	}
	bwd, err := se.walkChain(ctx, sts, t, meet, false, segs)
	if err != nil {
		return nil, err
	}
	// fwd is meet..s (reverse discovery order), bwd is meet..t; reverse the
	// forward half and drop bwd's duplicate meet entry.
	nodes := make([]int64, 0, len(fwd)+len(bwd)-1)
	for i := len(fwd) - 1; i >= 0; i-- {
		nodes = append(nodes, fwd[i])
	}
	nodes = append(nodes, bwd[1:]...)
	return nodes, nil
}

// walkChain follows the parent links from meet toward end (s forward,
// t backward), reading each node's link at its owner shard. The returned
// sequence starts at meet and ends at end; under BSEG the segment
// interiors are spliced between each node and its parent with the
// orientation the walk consumes — reversed (closest-to-cur first) from
// TOutSegs on the meet->s walk, path order from TInSegs on the meet->t
// walk — mirroring recoverForward/recoverBackward in core.
func (se *ShardedEngine) walkChain(ctx context.Context, sts []*core.Superstep, end, meet int64, forward bool, segs bool) ([]int64, error) {
	out := []int64{meet}
	cur := meet
	guard := se.nodes + 2
	for step := int64(0); cur != end; step++ {
		if step > guard {
			return nil, fmt.Errorf("shard: parent chain longer than node count (cycle?)")
		}
		own := se.part.Owner(cur)
		p, ok, err := sts[own].Parent(ctx, forward, cur)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("shard: broken parent chain at node %d", cur)
		}
		if segs && p != cur {
			interior, err := se.unfoldAcrossShards(ctx, sts, forward, p, cur)
			if err != nil {
				return nil, err
			}
			out = append(out, interior...)
		}
		out = append(out, p)
		cur = p
	}
	return out, nil
}

// unfoldAcrossShards expands the segment behind hop parent->cur. The
// recorded parent tells us a shard relaxed a segment between the two nodes
// whose cost equals the exact distance difference; several shards may
// record a (parent, cur) segment over their different subgraphs, so we
// probe for one at exactly that cost — such a segment is a globally
// shortest parent->cur path, hence shortest in that shard's subgraph too,
// so the shard's pid chain (which requires the prefix/suffix property)
// unfolds it soundly. Interiors keep the orientation the walk expects:
// forward (TOutSegs) reversed, backward (TInSegs) from cur toward parent.
func (se *ShardedEngine) unfoldAcrossShards(ctx context.Context, sts []*core.Superstep, forward bool, parent, cur int64) ([]int64, error) {
	dc, ok, err := sts[se.part.Owner(cur)].Dist(ctx, forward, cur)
	if err != nil || !ok {
		return nil, fmt.Errorf("shard: no distance for chain node %d: %w", cur, err)
	}
	dp, ok, err := sts[se.part.Owner(parent)].Dist(ctx, forward, parent)
	if err != nil || !ok {
		return nil, fmt.Errorf("shard: no distance for chain parent %d: %w", parent, err)
	}
	want := dc - dp
	// Segment probe columns: TOutSegs records parent->cur (fid=parent),
	// TInSegs records cur->parent's reverse orientation (fid=cur, tid=parent
	// in the walk's terms — the backward chain hop runs cur->p toward t).
	u, v := parent, cur
	if !forward {
		u, v = cur, parent
	}
	for _, ss := range sts {
		c, ok, err := ss.SegCost(ctx, forward, u, v)
		if err != nil {
			return nil, err
		}
		if !ok || c != want {
			continue
		}
		return ss.UnfoldSegment(ctx, forward, u, v)
	}
	return nil, fmt.Errorf("shard: no shard records segment (%d,%d) at cost %d", u, v, want)
}
