package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rdb"
)

// Options configures a ShardedEngine.
type Options struct {
	// Shards is the partition count k (>= 1).
	Shards int
	// Strategy maps node ids to shards (Hash default).
	Strategy Strategy
	// Lthd, when > 0, builds each shard's SegTable at that threshold so the
	// coordinator can run BSEG.
	Lthd int64
	// Portals, when > 0, builds the cut-vertex sketch with up to that many
	// portals (0 = no sketch).
	Portals int
	// BufferPoolPages is the TOTAL page budget, split evenly across the
	// shard databases (0 = each shard gets the rdb default).
	BufferPoolPages int
	// SimulatedIOLatency is forwarded to every shard database.
	SimulatedIOLatency time.Duration
	// MaxIters caps each shard's superstep participation (0 = default).
	MaxIters int
	// PrefetchWorkers is the per-shard concurrency used to warm the
	// adjacency pages of each superstep's selected frontier before the
	// expansion statement scans them serially (0 = default of 8,
	// negative = disabled). See core.Superstep.PrefetchFrontier.
	PrefetchWorkers int
}

// defaultPrefetchWorkers resolves Options.PrefetchWorkers.
func (o Options) prefetchWorkers() int {
	if o.PrefetchWorkers < 0 {
		return 0
	}
	if o.PrefetchWorkers == 0 {
		return 8
	}
	return o.PrefetchWorkers
}

// ShardedEngine owns k core.Engine instances, each loaded with its
// partition's edges (owned plus mirrored cut edges) over the full node-id
// space, and answers the same Query surface by coordinating supersteps
// across them.
type ShardedEngine struct {
	opts   Options
	part   Partition
	shards []*shardInstance
	sk     *sketch

	nodes    int64
	edges    int // original edge count (mirrors not double-counted)
	cutEdges int
	segBuilt bool

	queries    atomic.Uint64
	errors     atomic.Uint64
	supersteps atomic.Uint64
	exchanged  atomic.Uint64 // candidates routed across shard boundaries
	sketchWins atomic.Uint64 // queries answered at the sketch bound
	queryDur   *obs.Histogram
}

// shardInstance is one partition's database + engine pair.
type shardInstance struct {
	db    *rdb.DB
	eng   *core.Engine
	edges int // rows in this shard's edge table, mirrors included
}

// Open partitions g and brings up the shard engines in parallel. Lthd > 0
// additionally builds each shard's SegTable (over the shard subgraph — the
// fold covers every local edge, so relaxations along any original edge
// remain available in the owning shard).
func Open(g *graph.Graph, opts Options) (*ShardedEngine, error) {
	part, err := NewPartition(g.N, opts.Shards, opts.Strategy)
	if err != nil {
		return nil, err
	}
	split := part.SplitEdges(g)

	se := &ShardedEngine{
		opts:     opts,
		part:     part,
		shards:   make([]*shardInstance, part.K),
		nodes:    g.N,
		edges:    g.M(),
		cutEdges: split.CutEdges,
		segBuilt: opts.Lthd > 0,
		queryDur: obs.NewHistogram(obs.DefLatencyBuckets...),
	}
	pagesPer := 0
	if opts.BufferPoolPages > 0 {
		pagesPer = opts.BufferPoolPages / part.K
		if pagesPer < 1 {
			pagesPer = 1
		}
	}
	err = se.fanout(func(i int, _ *shardInstance) error {
		db, err := rdb.Open(rdb.Options{
			BufferPoolPages:    pagesPer,
			SimulatedIOLatency: opts.SimulatedIOLatency,
		})
		if err != nil {
			return err
		}
		eng := core.NewEngine(db, core.Options{
			CacheSize: -1, // answers are cached (if at all) above the shards
			MaxIters:  opts.MaxIters,
		})
		sub, err := graph.New(g.N, split.Edges[i])
		if err != nil {
			db.Close()
			return err
		}
		if err := eng.LoadGraph(sub); err != nil {
			db.Close()
			return err
		}
		if opts.Lthd > 0 {
			if _, err := eng.BuildSegTable(opts.Lthd); err != nil {
				eng.Close()
				return err
			}
		}
		se.shards[i] = &shardInstance{db: db, eng: eng, edges: sub.M()}
		return nil
	})
	if err != nil {
		se.Close()
		return nil, err
	}
	if opts.Portals > 0 {
		se.sk = buildSketch(g, split.CutVertices, opts.Portals)
	}
	return se, nil
}

// Close shuts every shard engine down. Safe on a partially opened engine.
func (se *ShardedEngine) Close() error {
	var errs []error
	for _, sh := range se.shards {
		if sh == nil {
			continue
		}
		if err := sh.eng.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Partition exposes the node-to-shard map.
func (se *ShardedEngine) Partition() Partition { return se.part }

// Nodes returns the full node-id space size.
func (se *ShardedEngine) Nodes() int64 { return se.nodes }

// Edges returns the original (unmirrored) edge count.
func (se *ShardedEngine) Edges() int { return se.edges }

// SegBuilt reports whether the shard SegTables exist (BSEG availability).
func (se *ShardedEngine) SegBuilt() bool { return se.segBuilt }

// Engine exposes shard i's underlying engine (tests and stats plumbing).
func (se *ShardedEngine) Engine(i int) *core.Engine { return se.shards[i].eng }

// EvictAll drops every shard's buffer pool, forcing the next queries cold.
// Benchmarks use it to measure disk-resident behaviour after the load
// phase warmed the pools.
func (se *ShardedEngine) EvictAll() error {
	return se.fanout(func(_ int, sh *shardInstance) error {
		return sh.db.Pool().EvictAll()
	})
}

// SetSimulatedIOLatency arms or disarms the simulated per-page seek cost
// on every shard's database; benchmarks open at memory speed and charge
// the seek only in the measured phase.
func (se *ShardedEngine) SetSimulatedIOLatency(lat time.Duration) {
	for _, sh := range se.shards {
		sh.db.SetSimulatedIOLatency(lat)
	}
}

// fanout runs fn for every shard concurrently and joins the errors — the
// superstep primitive (the repo carries no dependencies, so this replaces
// an errgroup).
func (se *ShardedEngine) fanout(fn func(i int, sh *shardInstance) error) error {
	errs := make([]error, len(se.shards))
	var wg sync.WaitGroup
	for i := range se.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i, se.shards[i])
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ShardStats is one shard's slice of the Stats block.
type ShardStats struct {
	Edges       int    `json:"edges"` // including mirrored cut edges
	Statements  uint64 `json:"statements"`
	PeakReaders int    `json:"peak_readers"`
}

// Stats snapshots the sharded serving state for /stats.
type Stats struct {
	Shards     int          `json:"shards"`
	Strategy   string       `json:"strategy"`
	Nodes      int64        `json:"nodes"`
	Edges      int          `json:"edges"`
	CutEdges   int          `json:"cut_edges"`
	Portals    int          `json:"portals"`
	SegBuilt   bool         `json:"seg_built"`
	Queries    uint64       `json:"queries"`
	Errors     uint64       `json:"errors"`
	Supersteps uint64       `json:"supersteps"`
	Exchanged  uint64       `json:"exchanged_candidates"`
	SketchWins uint64       `json:"sketch_wins"`
	PerShard   []ShardStats `json:"per_shard"`
}

// Stats snapshots the coordinator counters and per-shard engine state.
func (se *ShardedEngine) Stats() Stats {
	st := Stats{
		Shards:     se.part.K,
		Strategy:   se.part.Strategy.String(),
		Nodes:      se.nodes,
		Edges:      se.edges,
		CutEdges:   se.cutEdges,
		SegBuilt:   se.segBuilt,
		Queries:    se.queries.Load(),
		Errors:     se.errors.Load(),
		Supersteps: se.supersteps.Load(),
		Exchanged:  se.exchanged.Load(),
		SketchWins: se.sketchWins.Load(),
	}
	if se.sk != nil {
		st.Portals = len(se.sk.portals)
	}
	for _, sh := range se.shards {
		if sh == nil {
			continue
		}
		st.PerShard = append(st.PerShard, ShardStats{
			Edges:       sh.edges,
			Statements:  sh.db.Stats().Statements,
			PeakReaders: sh.eng.ConcurrencyStats().Gate.PeakReaders,
		})
	}
	return st
}

// CollectMetrics exports the shard block for /metrics.
func (se *ShardedEngine) CollectMetrics(x *obs.Exporter) {
	st := se.Stats()
	x.Gauge("spdb_shard_count", "Configured shard count.", float64(st.Shards))
	x.Gauge("spdb_shard_cut_edges", "Edges crossing shard boundaries.", float64(st.CutEdges))
	x.Gauge("spdb_shard_sketch_portals", "Cut-vertex sketch portal count.", float64(st.Portals))
	x.Counter("spdb_shard_queries_total", "Queries answered by the shard coordinator.", float64(st.Queries))
	x.Counter("spdb_shard_query_errors_total", "Shard-coordinator queries that failed.", float64(st.Errors))
	x.Counter("spdb_shard_supersteps_total", "Coordinator supersteps executed.", float64(st.Supersteps))
	x.Counter("spdb_shard_exchanged_candidates_total", "Frontier candidates routed across shard boundaries.", float64(st.Exchanged))
	x.Counter("spdb_shard_sketch_wins_total", "Queries answered at the cut-vertex sketch bound.", float64(st.SketchWins))
	x.Histogram("spdb_shard_query_seconds", "Shard-coordinator query latency.", se.queryDur)
	// The exporter requires each family's samples to be consecutive, so
	// iterate shards once per family rather than families once per shard.
	for i, ps := range st.PerShard {
		x.Gauge("spdb_shard_edges", "Edge rows loaded per shard (mirrors included).", float64(ps.Edges), obs.L("shard", fmt.Sprintf("%d", i)))
	}
	for i, ps := range st.PerShard {
		x.Counter("spdb_shard_statements_total", "Statements executed per shard database.", float64(ps.Statements), obs.L("shard", fmt.Sprintf("%d", i)))
	}
	for i, ps := range st.PerShard {
		x.Gauge("spdb_shard_gate_peak_readers", "Peak concurrent readers admitted per shard.", float64(ps.PeakReaders), obs.L("shard", fmt.Sprintf("%d", i)))
	}
}
