package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rdb"
)

// ErrUnsupportedAlgorithm reports a Query hint outside the coordinator's
// set-at-a-time algorithms (BSDJ, BBFS, BSEG). It aliases the core
// sentinel so errors.Is matches either layer.
var ErrUnsupportedAlgorithm = core.ErrUnsupportedSuperstep

// Query answers a shortest-path request through the superstep coordinator:
// it seeds s forward into s's owner shard and t backward into t's owner
// shard, then loops supersteps — global statistics collection, direction
// choice by the paper's fewer-frontier rule, parallel F + E + M across
// every shard, and a boundary exchange that routes each harvested
// (nid, parent, cost) candidate to the shard owning nid — until the §4.1
// stopping condition holds over the global minima or both directions
// exhaust. Path recovery stitches per-shard parent chains across cut
// vertices. MaxStatements applies per shard (each shard budgets its own
// statement stream). MaxRelError is ignored: every answer is exact, which
// satisfies any tolerance.
func (se *ShardedEngine) Query(ctx context.Context, req core.QueryRequest) (core.QueryResult, error) {
	start := time.Now()
	se.queries.Add(1)
	res, err := se.run(ctx, req)
	se.queryDur.Observe(time.Since(start).Seconds())
	if err != nil {
		se.errors.Add(1)
	} else if res.Stats != nil {
		res.Stats.Total = time.Since(start)
	}
	return res, err
}

// resolve maps the request's algorithm hint to a coordinator-supported
// concrete algorithm and a planner decision label.
func (se *ShardedEngine) resolve(alg core.Algorithm) (core.Algorithm, string, error) {
	switch alg {
	case core.AlgAuto:
		// The planner degenerates to two choices here: BSEG when every
		// shard carries a SegTable, the plain set Dijkstra otherwise.
		if se.segBuilt {
			return core.AlgBSEG, "shard-bseg", nil
		}
		return core.AlgBSDJ, "shard-bsdj", nil
	case core.AlgBSDJ, core.AlgBBFS:
		return alg, "hint", nil
	case core.AlgBSEG:
		if !se.segBuilt {
			return 0, "", fmt.Errorf("shard: BSEG requires Options.Lthd > 0 at Open")
		}
		return alg, "hint", nil
	}
	return 0, "", fmt.Errorf("%w: %v", ErrUnsupportedAlgorithm, alg)
}

func (se *ShardedEngine) run(ctx context.Context, req core.QueryRequest) (core.QueryResult, error) {
	s, t := req.Source, req.Target
	if s < 0 || s >= se.nodes || t < 0 || t >= se.nodes {
		return core.QueryResult{}, fmt.Errorf("shard: query (%d,%d) out of node range [0,%d)", s, t, se.nodes)
	}
	alg, decision, err := se.resolve(req.Alg)
	if err != nil {
		return core.QueryResult{}, err
	}
	qs := &core.QueryStats{Algorithm: alg.String(), Planner: decision}
	if s == t {
		p := core.Path{Found: true, Length: 0, Nodes: []int64{s}}
		return core.QueryResult{Found: true, Path: p, Algorithm: alg, Stats: qs}, nil
	}

	// Admit one superstep handle per shard (shared gate + scratch lease).
	sts := make([]*core.Superstep, se.part.K)
	defer func() {
		for _, ss := range sts {
			if ss != nil {
				ss.Close()
			}
		}
	}()
	if err := se.fanout(func(i int, sh *shardInstance) error {
		ss, err := sh.eng.BeginSuperstep(ctx, alg, req.MaxStatements)
		sts[i] = ss
		return err
	}); err != nil {
		return core.QueryResult{}, err
	}

	// Seed the two endpoint rows into their owner shards; injecting
	// (s, s, 0) into an empty visited table reproduces biInit exactly.
	if _, err := sts[se.part.Owner(s)].Inject(ctx, true, []core.FrontierCand{{Nid: s, Par: s, Cost: 0}}); err != nil {
		return se.fail(qs, sts, err)
	}
	if _, err := sts[se.part.Owner(t)].Inject(ctx, false, []core.FrontierCand{{Nid: t, Par: t, Cost: 0}}); err != nil {
		return se.fail(qs, sts, err)
	}

	// Admissible sketch bound: the length of a real s->portal->t walk.
	var sketchBound int64
	sketchPortal, sketchOK := -1, false
	if se.sk != nil {
		sketchBound, sketchPortal, sketchOK = se.sk.Bound(s, t)
	}

	trackL := alg != core.AlgBBFS // BBFS terminates by exhaustion only
	var lf, lb int64
	nf, nb := int64(1), int64(1)
	candF, candB := true, true
	var kf, kb int64
	minCost := int64(4 * core.MaxDist)
	limit := 16*int(se.nodes) + 1024
	if se.opts.MaxIters > 0 {
		limit = se.opts.MaxIters
	}

	mins := make([]core.SuperstepMins, se.part.K)
	counts := make([]int64, se.part.K)
	harvested := make([][]core.FrontierCand, se.part.K)

	for iter := 0; ; iter++ {
		if err := rdb.ContextErr(ctx); err != nil {
			return se.fail(qs, sts, fmt.Errorf("shard: %s cancelled after %d supersteps: %w", alg, iter, err))
		}
		if iter > limit {
			return se.fail(qs, sts, fmt.Errorf("shard: %s exceeded %d supersteps (s=%d t=%d)", alg, limit, s, t))
		}
		qs.Iterations = iter + 1
		se.supersteps.Add(1)

		// Global statistics collection: fold per-shard minima. Routing every
		// candidate to its owner guarantees the owner row carries the global
		// minimum d2s AND d2t per node, so the fold over per-shard
		// MIN(d2s+d2t) sees every meeting — including one whose halves were
		// discovered in different shards.
		if err := se.fanout(func(i int, _ *shardInstance) error {
			var err error
			mins[i], err = sts[i].Mins(ctx)
			return err
		}); err != nil {
			return se.fail(qs, sts, err)
		}
		candF, candB = false, false
		for _, m := range mins {
			if m.HasSum && m.Sum < minCost {
				minCost = m.Sum
			}
			if m.HasMinF && (!candF || m.MinF < lf) {
				lf, candF = m.MinF, true
			}
			if m.HasMinB && (!candB || m.MinB < lb) {
				lb, candB = m.MinB, true
			}
		}
		best := minCost
		if sketchOK && sketchBound < best {
			best = sketchBound
		}
		if trackL && core.StopCondition(lf, lb, best) {
			break
		}
		if !candF && !candB {
			break
		}

		// §4.1 direction policy over the GLOBAL frontier sizes.
		forward := candF && (!candB || nf <= nb)
		var k int64
		if forward {
			kf++
			k = kf
		} else {
			kb++
			k = kb
		}

		// F: every shard selects its local slice of the frontier. A shard
		// whose local minimum exceeds the global one expands "prematurely";
		// the M-operator re-opens any row a later candidate improves, so
		// distances stay exact (label-correcting), and the shard holding
		// the global minimum always expands it, so progress is Dijkstra's.
		if err := se.fanout(func(i int, _ *shardInstance) error {
			var err error
			counts[i], err = sts[i].SelectFrontier(ctx, forward, k)
			return err
		}); err != nil {
			return se.fail(qs, sts, err)
		}
		var cnt int64
		for _, c := range counts {
			cnt += c
		}
		if cnt == 0 {
			// Unreachable: a non-null direction minimum guarantees at least
			// its own row matches the frontier rule.
			return se.fail(qs, sts, fmt.Errorf("shard: empty frontier with live candidates (internal)"))
		}

		// E + M + harvest on every shard that selected something.
		lOther := lb
		if !forward {
			lOther = lf
		}
		if err := se.fanout(func(i int, _ *shardInstance) error {
			harvested[i] = nil
			if counts[i] == 0 {
				return nil
			}
			// Warm the frontier's adjacency pages with concurrent probes
			// before the expansion statement reads them serially; on a cold
			// pool this turns the superstep's dominant page waits into
			// overlapped transfers (see core.Superstep.PrefetchFrontier).
			if w := se.opts.prefetchWorkers(); w > 1 && counts[i] > 1 {
				if err := sts[i].PrefetchFrontier(ctx, forward, w); err != nil {
					return err
				}
			}
			var err error
			harvested[i], err = sts[i].ExpandHarvest(ctx, forward, lOther, best)
			return err
		}); err != nil {
			return se.fail(qs, sts, err)
		}

		// Boundary exchange: route each candidate to its owner, keeping the
		// cheapest per node (TExpand's nid is a primary key, and the owner
		// merge would pick the minimum anyway — deduping here just saves
		// traffic). Producer-owned candidates were already merged locally.
		bestCand := make(map[int64]core.FrontierCand)
		for prod, cands := range harvested {
			for _, c := range cands {
				if se.part.Owner(c.Nid) == prod {
					continue
				}
				if b, ok := bestCand[c.Nid]; !ok || c.Cost < b.Cost {
					bestCand[c.Nid] = c
				}
			}
		}
		if len(bestCand) > 0 {
			batches := make([][]core.FrontierCand, se.part.K)
			for _, c := range bestCand {
				o := se.part.Owner(c.Nid)
				batches[o] = append(batches[o], c)
			}
			se.exchanged.Add(uint64(len(bestCand)))
			if err := se.fanout(func(i int, _ *shardInstance) error {
				if len(batches[i]) == 0 {
					return nil
				}
				_, err := sts[i].Inject(ctx, forward, batches[i])
				return err
			}); err != nil {
				return se.fail(qs, sts, err)
			}
		}

		if forward {
			nf = cnt
		} else {
			nb = cnt
		}
	}

	if err := se.fanout(func(i int, _ *shardInstance) error {
		vc, err := sts[i].VisitedRows(ctx)
		mins[i].Sum = int64(vc) // reuse the slot; folded below
		return err
	}); err != nil {
		return se.fail(qs, sts, err)
	}
	for _, m := range mins {
		qs.VisitedRows += int(m.Sum)
	}

	best := minCost
	if sketchOK && sketchBound < best {
		best = sketchBound
	}
	if best >= core.MaxDist {
		mergeStats(qs, sts)
		return core.QueryResult{Found: false, Path: core.Path{}, Lower: core.MaxDist, Upper: core.MaxDist,
			Algorithm: alg, Stats: qs}, nil
	}

	var nodes []int64
	if sketchOK && sketchBound < minCost {
		// The relational search terminated against the sketch bound before
		// recording a meeting at that cost; the portal trees carry the path.
		se.sketchWins.Add(1)
		nodes = se.sk.Path(s, t, sketchPortal)
	} else {
		nodes, err = se.stitchPath(ctx, sts, s, t, minCost, alg == core.AlgBSEG)
		if err != nil {
			return se.fail(qs, sts, err)
		}
	}
	mergeStats(qs, sts)
	return core.QueryResult{Found: true, Distance: best,
		Path:  core.Path{Found: true, Length: best, Nodes: nodes},
		Lower: best, Upper: best,
		Algorithm: alg, Stats: qs}, nil
}

// fail merges the per-shard accounting into qs before propagating err, so
// failed queries still report their cost.
func (se *ShardedEngine) fail(qs *core.QueryStats, sts []*core.Superstep, err error) (core.QueryResult, error) {
	mergeStats(qs, sts)
	return core.QueryResult{Stats: qs}, err
}

// mergeStats folds the shard-local accounting into the query's global
// stats. Phase durations sum shard wall clocks, so with k shards working
// in parallel the phase total can exceed QueryStats.Total — they read as
// aggregate work, like CPU time.
func mergeStats(qs *core.QueryStats, sts []*core.Superstep) {
	for _, ss := range sts {
		if ss == nil {
			continue
		}
		sub := ss.Stats()
		qs.Statements += sub.Statements
		qs.TuplesAffected += sub.TuplesAffected
		qs.Expansions += sub.Expansions
		qs.ForwardExpansions += sub.ForwardExpansions
		qs.BackwardExpansions += sub.BackwardExpansions
		qs.PrunedRows += sub.PrunedRows
		qs.PE += sub.PE
		qs.SC += sub.SC
		qs.FPR += sub.FPR
		qs.FOp += sub.FOp
		qs.EOp += sub.EOp
		qs.MOp += sub.MOp
	}
}

// QueryBatch fans a request set across a worker pool (workers <= 0 means
// GOMAXPROCS), answering each through the coordinator. Results come back
// in input order; a cancelled context fails the not-yet-started requests
// fast, mirroring core.Engine.QueryBatch.
func (se *ShardedEngine) QueryBatch(ctx context.Context, reqs []core.QueryRequest, workers int) []core.QueryResponse {
	out := make([]core.QueryResponse, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i].Request = reqs[i]
				if err := rdb.ContextErr(ctx); err != nil {
					out[i].Err = err
					continue
				}
				out[i].Result, out[i].Err = se.Query(ctx, reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
