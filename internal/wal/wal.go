// Package wal implements the engine's append-only mutation log. Every
// ApplyMutations batch is encoded as one record — the batch's edge
// mutations plus the graph version the batch committed as — and appended
// with length+CRC framing BEFORE the engine touches TEdges. Replay of the
// log over a snapshot base is exact because the engine's mutation path is
// deterministic SQL over deterministic state: re-applying the same batches
// in order reproduces the same relational state, including the applied
// prefix of a batch that failed mid-way.
//
// Frame format (little-endian):
//
//	[len u32][crc32(payload) u32][payload]
//
// Payload format:
//
//	[version u64][count u32] then per mutation [op u8][from i64][to i64][weight i64]
//
// Durability is append-then-fsync with group commit: concurrent appenders
// coalesce onto one fsync covering every write buffered before it started
// (the sync-cohort pattern), so a burst of batches costs one disk flush,
// not one per batch. Recovery (Open) scans the log to the last intact
// record and truncates a torn tail — a crash mid-append loses at most the
// record being written, never a record whose Append returned.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Op is one mutation kind. Values mirror core.MutOp (insert, delete,
// update) but are redeclared here so the core package can depend on wal
// without a cycle; the engine converts at the boundary.
type Op uint8

// Mutation operations.
const (
	OpInsert Op = iota
	OpDelete
	OpUpdate
)

// Mutation is one edge change inside a record. Weight is meaningless for
// OpDelete (encoded as 0).
type Mutation struct {
	Op       Op
	From, To int64
	Weight   int64
}

// Record is one logged ApplyMutations batch. Version is the graph version
// the batch committed as (the engine bumps once per batch); recovery skips
// records at or below the hydrating snapshot's version.
type Record struct {
	Version uint64
	Muts    []Mutation
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// maxRecord bounds one frame's payload during scan: a length field past it
// is treated as a torn/corrupt tail, not an allocation request.
const maxRecord = 1 << 28

const frameHeader = 8 // len u32 + crc u32

// Stats snapshots the log's counters (all monotonic except Size).
type Stats struct {
	// Appends counts records appended; Bytes the framed bytes written.
	Appends uint64
	Bytes   uint64
	// Syncs counts fsyncs issued; with group commit this is <= Appends,
	// and the gap is the coalescing win. SyncTime is total time spent in
	// fsync — the soak benchmark reports its share of mutation latency.
	Syncs    uint64
	SyncTime time.Duration
	// Resets counts truncations to empty (one per committed snapshot).
	Resets uint64
	// Size is the current log length in bytes.
	Size int64
	// RecoveredRecords / TruncatedBytes describe the Open-time scan: how
	// many intact records the log held and how many torn trailing bytes
	// were cut.
	RecoveredRecords int
	TruncatedBytes   int64
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	path string

	mu     sync.Mutex // serializes writes and size accounting
	f      *os.File
	size   int64
	closed bool

	// Group-commit state: written numbers buffered appends, synced the
	// highest append covered by a completed fsync. One goroutine at a time
	// runs fsync; cohort members whose append is covered by it just wait.
	syncMu  sync.Mutex
	cond    *sync.Cond
	syncing bool
	written uint64
	synced  uint64

	appends   atomic.Uint64
	bytes     atomic.Uint64
	syncs     atomic.Uint64
	syncNanos atomic.Int64
	resets    atomic.Uint64

	recovered      int
	truncatedBytes int64
}

// Scan reads the log at path up to the last intact record, without
// modifying the file. It returns the decoded records and the byte offset
// of the intact prefix; a missing file reads as an empty log. A record
// with a bad length, a CRC mismatch (bit flip) or a truncated frame ends
// the scan — everything from there on is torn tail.
func Scan(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("wal: read %s: %w", path, err)
	}
	var recs []Record
	off := 0
	for {
		if len(data)-off < frameHeader {
			break
		}
		ln := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if ln > maxRecord || off+frameHeader+int(ln) > len(data) {
			break
		}
		payload := data[off+frameHeader : off+frameHeader+int(ln)]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		rec, ok := decodePayload(payload)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += frameHeader + int(ln)
	}
	return recs, int64(off), nil
}

// Open validates the log at path (creating it if absent), truncates any
// torn tail past the last intact record, and returns the log positioned
// for appends plus the intact records for replay.
func Open(path string) (*Log, []Record, error) {
	recs, intact, err := Scan(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	torn := fi.Size() - intact
	if torn > 0 {
		// Cut the torn tail so the next append starts at a frame boundary;
		// fsync makes the truncation durable before any new record lands
		// after it.
		if err := f.Truncate(intact); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(intact, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek: %w", err)
	}
	l := &Log{path: path, f: f, size: intact,
		recovered: len(recs), truncatedBytes: max(torn, 0)}
	l.cond = sync.NewCond(&l.syncMu)
	return l, recs, nil
}

// Append encodes rec, writes the frame, and returns once an fsync covering
// it has completed (its own, or a concurrent cohort's).
func (l *Log) Append(rec Record) error {
	frame := encodeFrame(rec)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if _, err := l.f.Write(frame); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.syncMu.Lock()
	l.written++
	seq := l.written
	l.syncMu.Unlock()
	l.mu.Unlock()
	l.appends.Add(1)
	l.bytes.Add(uint64(len(frame)))
	return l.syncTo(seq)
}

// syncTo blocks until an fsync covering append seq has completed. The
// first waiter past the current fsync becomes the next syncer; everyone
// whose write it covers rides along.
func (l *Log) syncTo(seq uint64) error {
	for {
		l.syncMu.Lock()
		for l.synced < seq && l.syncing {
			l.cond.Wait()
		}
		if l.synced >= seq {
			l.syncMu.Unlock()
			return nil
		}
		l.syncing = true
		l.syncMu.Unlock()

		l.mu.Lock()
		target := l.written
		f, closed := l.f, l.closed
		l.mu.Unlock()
		var err error
		if closed {
			err = ErrClosed
		} else {
			t0 := time.Now()
			err = f.Sync()
			l.syncNanos.Add(time.Since(t0).Nanoseconds())
			l.syncs.Add(1)
		}

		l.syncMu.Lock()
		l.syncing = false
		if err == nil && l.synced < target {
			l.synced = target
		}
		l.cond.Broadcast()
		l.syncMu.Unlock()
		if err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
}

// Sync forces an fsync of everything appended so far (the shutdown path's
// final flush). A no-op on an empty or fully synced log.
func (l *Log) Sync() error {
	l.syncMu.Lock()
	seq := l.written
	l.syncMu.Unlock()
	if seq == 0 {
		return nil
	}
	return l.syncTo(seq)
}

// Reset truncates the log to empty: the caller has committed a snapshot
// manifest covering every logged record, so the log's contents are
// superseded. Durable before return.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		return fmt.Errorf("wal: reset seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset sync: %w", err)
	}
	l.size = 0
	l.syncMu.Lock()
	l.synced = l.written // nothing pending
	l.syncMu.Unlock()
	l.resets.Add(1)
	return nil
}

// Close fsyncs outstanding appends and closes the file. Idempotent.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// Size returns the current log length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:          l.appends.Load(),
		Bytes:            l.bytes.Load(),
		Syncs:            l.syncs.Load(),
		SyncTime:         time.Duration(l.syncNanos.Load()),
		Resets:           l.resets.Load(),
		Size:             l.Size(),
		RecoveredRecords: l.recovered,
		TruncatedBytes:   l.truncatedBytes,
	}
}

// encodeFrame renders one record as a framed byte slice.
func encodeFrame(rec Record) []byte {
	payload := make([]byte, 0, 12+25*len(rec.Muts))
	payload = binary.LittleEndian.AppendUint64(payload, rec.Version)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Muts)))
	for _, m := range rec.Muts {
		payload = append(payload, byte(m.Op))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(m.From))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(m.To))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(m.Weight))
	}
	frame := make([]byte, 0, frameHeader+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return append(frame, payload...)
}

// decodePayload parses one record payload; ok is false on any structural
// mismatch (treated as corruption by the scanner).
func decodePayload(p []byte) (Record, bool) {
	if len(p) < 12 {
		return Record{}, false
	}
	rec := Record{Version: binary.LittleEndian.Uint64(p)}
	n := int(binary.LittleEndian.Uint32(p[8:]))
	if len(p) != 12+25*n {
		return Record{}, false
	}
	rec.Muts = make([]Mutation, n)
	off := 12
	for i := range rec.Muts {
		op := Op(p[off])
		if op > OpUpdate {
			return Record{}, false
		}
		rec.Muts[i] = Mutation{
			Op:     op,
			From:   int64(binary.LittleEndian.Uint64(p[off+1:])),
			To:     int64(binary.LittleEndian.Uint64(p[off+9:])),
			Weight: int64(binary.LittleEndian.Uint64(p[off+17:])),
		}
		off += 25
	}
	return rec, true
}
