package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Version: 1, Muts: []Mutation{{Op: OpInsert, From: 1, To: 2, Weight: 5}}},
		{Version: 2, Muts: []Mutation{
			{Op: OpDelete, From: 1, To: 2},
			{Op: OpUpdate, From: 3, To: 4, Weight: 9},
		}},
		{Version: 7, Muts: nil}, // empty batch is legal framing
	}
}

func writeLog(t *testing.T, path string, recs []Record) {
	t.Helper()
	l, prev, err := Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(prev) != 0 {
		t.Fatalf("fresh log recovered %d records", len(prev))
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Version != b[i].Version || len(a[i].Muts) != len(b[i].Muts) {
			return false
		}
		for j := range a[i].Muts {
			if a[i].Muts[j] != b[i].Muts[j] {
				return false
			}
		}
	}
	return true
}

// TestRoundtrip: append, close, reopen — every record comes back intact and
// the log is append-ready at the old tail.
func TestRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutations.wal")
	recs := testRecords()
	writeLog(t, path, recs)

	l, got, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if !recordsEqual(got, recs) {
		t.Fatalf("recovered %+v, want %+v", got, recs)
	}
	st := l.Stats()
	if st.RecoveredRecords != len(recs) || st.TruncatedBytes != 0 {
		t.Fatalf("stats %+v: want %d recovered, 0 truncated", st, len(recs))
	}
	// The reopened log keeps accepting appends after the recovered tail.
	extra := Record{Version: 9, Muts: []Mutation{{Op: OpInsert, From: 5, To: 6, Weight: 1}}}
	if err := l.Append(extra); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(got, append(recs, extra)) {
		t.Fatalf("after post-recovery append: got %d records", len(got))
	}
}

// TestTornTail: a crash mid-append leaves a truncated frame; recovery keeps
// every intact record, cuts the tail, and the file ends at a frame boundary.
func TestTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutations.wal")
	recs := testRecords()
	writeLog(t, path, recs)
	intactSize, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a torn append: a partial frame (header promising more bytes
	// than exist) at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 1, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, got, err := Open(path)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l.Close()
	if !recordsEqual(got, recs) {
		t.Fatalf("torn tail lost records: got %d, want %d", len(got), len(recs))
	}
	st := l.Stats()
	if st.TruncatedBytes != 6 {
		t.Fatalf("TruncatedBytes %d, want 6", st.TruncatedBytes)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != intactSize.Size() {
		t.Fatalf("tail not truncated: %d bytes, want %d", fi.Size(), intactSize.Size())
	}
}

// TestBitFlip: a flipped payload byte fails the CRC; the scan stops at the
// corrupted record and keeps the prefix, even though the frame lengths
// still line up.
func TestBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutations.wal")
	recs := testRecords()
	writeLog(t, path, recs)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the second record's payload. Record 1 occupies
	// frameHeader+12+25 bytes; aim well inside record 2.
	pos := frameHeader + 12 + 25 + frameHeader + 4
	data[pos] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, got, err := Open(path)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l.Close()
	if !recordsEqual(got, recs[:1]) {
		t.Fatalf("bit flip: recovered %d records, want 1 (the intact prefix)", len(got))
	}
	if st := l.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("bit flip: no bytes reported truncated")
	}
	// The log stays usable: new appends land after the surviving prefix.
	if err := l.Append(Record{Version: 3}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Version != 3 {
		t.Fatalf("append after corruption: got %+v", got)
	}
}

// TestReset: after a reset the log is empty and keeps accepting appends.
func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutations.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, r := range testRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size after reset: %d", l.Size())
	}
	post := Record{Version: 11, Muts: []Mutation{{Op: OpUpdate, From: 0, To: 1, Weight: 2}}}
	if err := l.Append(post); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(got, []Record{post}) {
		t.Fatalf("after reset: recovered %+v", got)
	}
}

// TestGroupCommit: concurrent appenders all return durably synced, and the
// fsync count is allowed to be (usually is) below the append count —
// coalescing, not one flush per record.
func TestGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutations.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Append(Record{Version: uint64(i + 1),
				Muts: []Mutation{{Op: OpInsert, From: int64(i), To: int64(i + 1), Weight: 1}}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("appends %d, want %d", st.Appends, n)
	}
	if st.Syncs == 0 || st.Syncs > n {
		t.Fatalf("syncs %d out of range (0, %d]", st.Syncs, n)
	}
	l.Close()
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("recovered %d records, want %d", len(got), n)
	}
}

// TestClosedLog: operations on a closed log fail cleanly.
func TestClosedLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutations.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second close: %v", err)
	}
	if err := l.Append(Record{Version: 1}); err == nil {
		t.Fatal("append on closed log succeeded")
	}
	if err := l.Reset(); err == nil {
		t.Fatal("reset on closed log succeeded")
	}
}

// TestEncodeDecode: the frame encoder and payload decoder are inverses and
// reject structurally bad payloads.
func TestEncodeDecode(t *testing.T) {
	rec := Record{Version: 42, Muts: []Mutation{
		{Op: OpInsert, From: -1, To: 1 << 40, Weight: 7}, // negative survives the u64 trip
	}}
	frame := encodeFrame(rec)
	got, ok := decodePayload(frame[frameHeader:])
	if !ok || !recordsEqual([]Record{got}, []Record{rec}) {
		t.Fatalf("roundtrip: %+v ok=%v", got, ok)
	}
	if _, ok := decodePayload(bytes.Repeat([]byte{1}, 11)); ok {
		t.Fatal("short payload accepted")
	}
	if _, ok := decodePayload(bytes.Repeat([]byte{0xff}, 12+25)); ok {
		t.Fatal("payload with bad op/count accepted")
	}
}
