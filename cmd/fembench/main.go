// Command fembench regenerates the paper's evaluation tables and figures,
// and doubles as the load generator for the concurrent serving tier.
//
// Usage:
//
//	fembench -list
//	fembench -exp table2,fig6a
//	fembench -exp all -queries 10 -scale 1.0 -v
//	fembench -exp oracle-alt -json bench-results
//	fembench -exp mutation-throughput -json bench-results   # BENCH_mutations.json
//	fembench -loadgen -clients 16 -lgalg BSEG -lgqueries 50 -repeat 5
//	fembench -loadgen -parallel 1,2,4 -json .          # BENCH_parallel.json
//	fembench -soak -duration 30s -window 5s -json .    # BENCH_soak.json
//
// Each experiment prints a table whose rows mirror the corresponding
// artefact in the paper (see EXPERIMENTS.md for the mapping and the
// paper-vs-measured discussion). The -loadgen mode replays a query set from
// a pool of concurrent clients against one shared engine, once with a cold
// path cache and once hot, and reports queries/sec for each round. The
// -soak mode drives sustained mixed read/mutation load for a fixed wall
// clock and reports windowed p50/p95/p99/max latency plus the gate-wait
// share per window — the serving-hygiene view the one-shot modes miss.
//
// With -json <dir>, every run additionally writes machine-readable
// BENCH_<name>.json files (table rows plus run config and wall time;
// cold/hot QPS for -loadgen) so the perf trajectory is recorded as a CI
// artifact instead of scrolling away in logs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		exps    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		queries = flag.Int("queries", 5, "queries per data point (paper: 100)")
		scale   = flag.Float64("scale", 1.0, "workload scale multiplier")
		seed    = flag.Int64("seed", 42, "generator seed")
		verbose = flag.Bool("v", false, "progress output")
		dataDir = flag.String("datadir", "", "directory for file-backed databases (default: temp)")
		jsonDir = flag.String("json", "", "also write machine-readable BENCH_<name>.json files into this directory")

		loadgen   = flag.Bool("loadgen", false, "run the serving-tier load generator instead of experiments")
		parallel  = flag.String("parallel", "", "loadgen: comma-separated concurrency levels (e.g. 1,2,4) — run the parallel cold-read scaling sweep instead of the cold/hot rounds")
		clients   = flag.Int("clients", 8, "loadgen: concurrent client workers")
		lgAlg     = flag.String("lgalg", "BSDJ", "loadgen: algorithm (AUTO|DJ|BDJ|BSDJ|BBFS|BSEG|ALT)")
		lgNodes   = flag.Int64("lgnodes", 5000, "loadgen: power-graph node count")
		lgQueries = flag.Int("lgqueries", 20, "loadgen: distinct query pairs")
		repeat    = flag.Int("repeat", 5, "loadgen: replays of each pair per round")
		lthd      = flag.Int64("lthd", 20, "loadgen: SegTable threshold for BSEG")

		soak     = flag.Bool("soak", false, "run the sustained-load soak benchmark instead of experiments")
		soakDur  = flag.Duration("duration", 10*time.Second, "soak: measured wall-clock span")
		soakWin  = flag.Duration("window", 2*time.Second, "soak: percentile window width")
		soakMut  = flag.Duration("mutate-every", 500*time.Millisecond, "soak: mutation batch cadence (0 = pure reads)")
		soakPair = flag.Int("pairs", 64, "soak: distinct query pairs cycled by readers")
	)
	flag.Parse()

	if *soak {
		runSoak(*lgAlg, *lgNodes, *soakDur, *soakWin, *soakMut, *soakPair,
			*clients, *lthd, *seed, *verbose, *jsonDir, *dataDir)
		return
	}

	if *loadgen {
		if *parallel != "" {
			// The parallel sweep has its own tuned graph and query-count
			// defaults; -lgnodes/-lgqueries override only when given.
			nodes, queries := int64(0), 0
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "lgnodes":
					nodes = *lgNodes
				case "lgqueries":
					queries = *lgQueries
				}
			})
			runParallelLoadGen(*lgAlg, nodes, queries, *parallel, *verbose, *jsonDir)
			return
		}
		runLoadGen(*lgAlg, *lgNodes, *lgQueries, *repeat, *clients, *lthd, *seed, *verbose, *jsonDir)
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Doc)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Queries = *queries
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.DataDir = *dataDir
	if *verbose {
		cfg.Verbose = os.Stderr
	}

	var ids []string
	if strings.EqualFold(*exps, "all") {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exps, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	start := time.Now()
	failed := 0
	for _, id := range ids {
		fn, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			failed++
			continue
		}
		t0 := time.Now()
		tab, err := fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("   (regenerated in %v)\n\n", time.Since(t0).Round(time.Millisecond))
		if *jsonDir != "" {
			path, err := bench.WriteTableJSON(*jsonDir, tab, cfg, time.Since(t0))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing JSON: %v\n", id, err)
				failed++
				continue
			}
			fmt.Printf("   wrote %s\n\n", path)
		}
	}
	fmt.Printf("done: %d experiment(s) in %v\n", len(ids)-failed, time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		os.Exit(1)
	}
}

func runLoadGen(algName string, nodes int64, queries, repeat, clients int, lthd, seed int64, verbose bool, jsonDir string) {
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := bench.DefaultLoadGenConfig()
	cfg.Alg = alg
	cfg.Nodes = nodes
	cfg.Queries = queries
	cfg.Repeat = repeat
	cfg.Clients = clients
	cfg.Lthd = lthd
	cfg.Seed = seed
	logf := func(string, ...any) {}
	if verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	res, err := bench.RunLoadGen(cfg, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	bench.LoadGenTable(cfg, res).Fprint(os.Stdout)
	if jsonDir != "" {
		path, err := bench.WriteLoadGenJSON(jsonDir, cfg, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: writing JSON: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("   wrote %s\n", path)
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d queries failed\n", res.Errors)
		os.Exit(1)
	}
}

func runSoak(algName string, nodes int64, dur, window, mutEvery time.Duration, pairs, clients int, lthd, seed int64, verbose bool, jsonDir, dataDir string) {
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := bench.DefaultSoakConfig()
	cfg.Alg = alg
	cfg.Nodes = nodes
	cfg.Duration = dur
	cfg.Window = window
	cfg.MutateEvery = mutEvery
	cfg.Pairs = pairs
	cfg.Clients = clients
	cfg.Lthd = lthd
	cfg.Seed = seed
	if dataDir != "" {
		// -datadir doubles as the soak durability directory: mutations are
		// WAL-fsynced and each window reports the fsync share.
		d, err := os.MkdirTemp(dataDir, "soak_durable_")
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(d)
		cfg.DataDir = d
	}
	logf := func(string, ...any) {}
	if verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	res, err := bench.RunSoak(cfg, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(1)
	}
	bench.SoakTable(cfg, res).Fprint(os.Stdout)
	if jsonDir != "" {
		path, err := bench.WriteSoakJSON(jsonDir, cfg, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: writing JSON: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("   wrote %s\n", path)
	}
	if res.Overall.Errors > 0 || res.MutationErrors > 0 {
		fmt.Fprintf(os.Stderr, "soak: %d query errors, %d mutation errors\n",
			res.Overall.Errors, res.MutationErrors)
		os.Exit(1)
	}
}

func runParallelLoadGen(algName string, nodes int64, queries int, levels string, verbose bool, jsonDir string) {
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := bench.DefaultParallelLoadGenConfig()
	cfg.Alg = alg
	if nodes > 0 {
		cfg.Nodes = nodes
	}
	if queries > 0 {
		cfg.Queries = queries
	}
	cfg.Levels = nil
	for _, part := range strings.Split(levels, ",") {
		var lv int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &lv); err != nil || lv < 1 {
			fmt.Fprintf(os.Stderr, "bad concurrency level %q in -parallel\n", part)
			os.Exit(1)
		}
		cfg.Levels = append(cfg.Levels, lv)
	}
	logf := func(string, ...any) {}
	if verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	res, err := bench.RunParallelLoadGen(cfg, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parallel loadgen: %v\n", err)
		os.Exit(1)
	}
	bench.ParallelLoadGenTable(cfg, res).Fprint(os.Stdout)
	if jsonDir != "" {
		path, err := bench.WriteParallelJSON(jsonDir, cfg, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parallel loadgen: writing JSON: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("   wrote %s\n", path)
	}
	for _, lv := range res.Levels {
		if lv.Errors > 0 {
			fmt.Fprintf(os.Stderr, "parallel loadgen: level %d: %d queries failed\n", lv.Level, lv.Errors)
			os.Exit(1)
		}
	}
}
