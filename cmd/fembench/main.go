// Command fembench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	fembench -list
//	fembench -exp table2,fig6a
//	fembench -exp all -queries 10 -scale 1.0 -v
//
// Each experiment prints a table whose rows mirror the corresponding
// artefact in the paper (see EXPERIMENTS.md for the mapping and the
// paper-vs-measured discussion).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		exps    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		queries = flag.Int("queries", 5, "queries per data point (paper: 100)")
		scale   = flag.Float64("scale", 1.0, "workload scale multiplier")
		seed    = flag.Int64("seed", 42, "generator seed")
		verbose = flag.Bool("v", false, "progress output")
		dataDir = flag.String("datadir", "", "directory for file-backed databases (default: temp)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Doc)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Queries = *queries
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.DataDir = *dataDir
	if *verbose {
		cfg.Verbose = os.Stderr
	}

	var ids []string
	if strings.EqualFold(*exps, "all") {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exps, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	start := time.Now()
	failed := 0
	for _, id := range ids {
		fn, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			failed++
			continue
		}
		t0 := time.Now()
		tab, err := fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("   (regenerated in %v)\n\n", time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("done: %d experiment(s) in %v\n", len(ids)-failed, time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		os.Exit(1)
	}
}
