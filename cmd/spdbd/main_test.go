package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rdb"
)

func newTestServer(t *testing.T) *server {
	t.Helper()
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	eng := core.NewEngine(db, core.Options{})
	t.Cleanup(func() { eng.Close() })
	if err := eng.LoadGraph(graph.Power(500, 3, 42)); err != nil {
		t.Fatal(err)
	}
	return &server{eng: eng, defaultAlg: core.AlgBSDJ, start: time.Now()}
}

func TestShortestPathEndpoint(t *testing.T) {
	sv := newTestServer(t)

	req := httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200", nil)
	rec := httptest.NewRecorder()
	sv.handleShortestPath(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != 1 || resp.Target != 200 || resp.Algo != "BSDJ" {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if resp.Cached {
		t.Fatal("first query must not be cached")
	}

	// The identical query again must come from the cache.
	rec = httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200", nil))
	var resp2 pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("repeated query must be served from the cache")
	}
	if resp2.Found != resp.Found || resp2.Distance != resp.Distance {
		t.Fatalf("cached answer differs: %+v vs %+v", resp2, resp)
	}
}

func TestShortestPathEndpointErrors(t *testing.T) {
	sv := newTestServer(t)
	for _, tc := range []struct {
		url    string
		status int
	}{
		{"/shortest-path?s=abc&t=2", http.StatusBadRequest},
		{"/shortest-path?s=1", http.StatusBadRequest},
		{"/shortest-path?s=1&t=2&alg=NOPE", http.StatusBadRequest},
		{"/shortest-path?s=1&t=99999999", http.StatusUnprocessableEntity},
	} {
		rec := httptest.NewRecorder()
		sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, tc.url, nil))
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.url, rec.Code, tc.status, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodDelete, "/shortest-path", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d", rec.Code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	sv := newTestServer(t)
	body := `{"alg":"BSDJ","queries":[{"s":1,"t":200},{"s":1,"t":200},{"s":-5,"t":2}]}`
	rec := httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodPost, "/shortest-path", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []pathResponse `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[1].Error != "" {
		t.Fatalf("valid queries errored: %+v", out.Results[:2])
	}
	if out.Results[0].Distance != out.Results[1].Distance {
		t.Fatal("duplicate queries disagree")
	}
	if out.Results[2].Error == "" {
		t.Fatal("invalid pair must carry a per-query error")
	}
}

func TestStatsAndHealthz(t *testing.T) {
	sv := newTestServer(t)
	rec := httptest.NewRecorder()
	sv.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200", nil))
	rec = httptest.NewRecorder()
	sv.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var stats map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"server", "graph", "cache", "db"} {
		if _, ok := stats[k]; !ok {
			t.Errorf("stats missing section %q", k)
		}
	}
}
