package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

func newTestServer(t *testing.T) *server {
	t.Helper()
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	eng := core.NewEngine(db, core.Options{})
	t.Cleanup(func() { eng.Close() })
	if err := eng.LoadGraph(graph.Power(500, 3, 42)); err != nil {
		t.Fatal(err)
	}
	return &server{eng: eng, defaultAlg: core.AlgBSDJ, start: time.Now()}
}

// newOracleServer is newTestServer plus a built landmark oracle, for the
// approximate-answer endpoints.
func newOracleServer(t *testing.T) *server {
	t.Helper()
	sv := newTestServer(t)
	if _, err := sv.eng.BuildOracle(oracle.Config{K: 6}); err != nil {
		t.Fatal(err)
	}
	return sv
}

func TestShortestPathEndpoint(t *testing.T) {
	sv := newTestServer(t)

	req := httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200", nil)
	rec := httptest.NewRecorder()
	sv.handleShortestPath(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != 1 || resp.Target != 200 || resp.Algo != "BSDJ" {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if resp.Cached {
		t.Fatal("first query must not be cached")
	}

	// The identical query again must come from the cache.
	rec = httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200", nil))
	var resp2 pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("repeated query must be served from the cache")
	}
	if resp2.Found != resp.Found || resp2.Distance != resp.Distance {
		t.Fatalf("cached answer differs: %+v vs %+v", resp2, resp)
	}
}

func TestShortestPathEndpointErrors(t *testing.T) {
	sv := newTestServer(t)
	for _, tc := range []struct {
		url    string
		status int
	}{
		{"/shortest-path?s=abc&t=2", http.StatusBadRequest},
		{"/shortest-path?s=1", http.StatusBadRequest},
		{"/shortest-path?s=1&t=2&alg=NOPE", http.StatusBadRequest},
		{"/shortest-path?s=1&t=99999999", http.StatusUnprocessableEntity},
	} {
		rec := httptest.NewRecorder()
		sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, tc.url, nil))
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.url, rec.Code, tc.status, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodDelete, "/shortest-path", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d", rec.Code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	sv := newTestServer(t)
	body := `{"alg":"BSDJ","queries":[{"s":1,"t":200},{"s":1,"t":200},{"s":-5,"t":2}]}`
	rec := httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodPost, "/shortest-path", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []pathResponse `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[1].Error != "" {
		t.Fatalf("valid queries errored: %+v", out.Results[:2])
	}
	if out.Results[0].Distance != out.Results[1].Distance {
		t.Fatal("duplicate queries disagree")
	}
	if out.Results[2].Error == "" {
		t.Fatal("invalid pair must carry a per-query error")
	}
}

// TestApproxModeAndDistanceEndpoint: ?mode=approx and /distance must both
// return an interval bracketing the exact answer.
func TestApproxModeAndDistanceEndpoint(t *testing.T) {
	sv := newOracleServer(t)

	// Exact reference through the normal path.
	rec := httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200", nil))
	var exact pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &exact); err != nil {
		t.Fatal(err)
	}
	if !exact.Found {
		t.Fatalf("reference pair should be connected: %+v", exact)
	}

	check := func(name string, rec *httptest.ResponseRecorder) {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, rec.Code, rec.Body.String())
		}
		var resp distanceResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Mode != "approx" || resp.Unreachable {
			t.Fatalf("%s: unexpected response: %+v", name, resp)
		}
		if resp.Lower > exact.Distance {
			t.Errorf("%s: lower %d above exact %d", name, resp.Lower, exact.Distance)
		}
		if resp.Upper != nil && *resp.Upper < exact.Distance {
			t.Errorf("%s: upper %d below exact %d", name, *resp.Upper, exact.Distance)
		}
	}
	rec = httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200&mode=approx", nil))
	check("mode=approx", rec)
	rec = httptest.NewRecorder()
	sv.handleDistance(rec, httptest.NewRequest(http.MethodGet, "/distance?s=1&t=200", nil))
	check("/distance", rec)

	// Unknown mode is a client error.
	rec = httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200&mode=nope", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown mode: status %d", rec.Code)
	}
	// /distance without an oracle is a per-query error.
	bare := newTestServer(t)
	rec = httptest.NewRecorder()
	bare.handleDistance(rec, httptest.NewRequest(http.MethodGet, "/distance?s=1&t=200", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("no-oracle /distance: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestEdgesEndpoint: POST /edges applies a batch, re-queries reflect it,
// and the error paths return client errors without mutating anything.
func TestEdgesEndpoint(t *testing.T) {
	sv := newTestServer(t)
	if _, err := sv.eng.BuildSegTable(6); err != nil {
		t.Fatal(err)
	}

	// Baseline answer, also priming the cache.
	rec := httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200", nil))
	var before pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}
	if !before.Found {
		t.Fatalf("reference pair should be connected: %+v", before)
	}

	// A drastic shortcut must change the served answer post-mutation.
	edges0 := sv.eng.Edges()
	body := `{"mutations":[{"op":"insert","from":1,"to":200,"weight":1}]}`
	rec = httptest.NewRecorder()
	sv.handleEdges(rec, httptest.NewRequest(http.MethodPost, "/edges", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var mresp mutationResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &mresp); err != nil {
		t.Fatal(err)
	}
	if mresp.Applied != 1 || mresp.Error != "" {
		t.Fatalf("unexpected mutation response: %+v", mresp)
	}
	if sv.eng.Edges() != edges0+1 {
		t.Fatalf("edge count %d, want %d", sv.eng.Edges(), edges0+1)
	}
	rec = httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200", nil))
	var after pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("mutation must purge the cached answer")
	}
	if after.Distance != 1 {
		t.Fatalf("shortcut not served: %+v", after)
	}

	// Delete the shortcut again: the original distance returns with no
	// manual SegTable rebuild.
	rec = httptest.NewRecorder()
	sv.handleEdges(rec, httptest.NewRequest(http.MethodPost, "/edges",
		strings.NewReader(`{"mutations":[{"op":"delete","from":1,"to":200}]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("delete status %d: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200&alg=BSEG", nil))
	var restored pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Distance != before.Distance {
		t.Fatalf("BSEG after delete: distance %d, want %d", restored.Distance, before.Distance)
	}

	// Error paths.
	for _, tc := range []struct {
		body   string
		status int
	}{
		{`{`, http.StatusBadRequest},
		{`{"mutations":[]}`, http.StatusBadRequest},
		{`{"mutations":[{"op":"upsert","from":1,"to":2}]}`, http.StatusBadRequest},
		{`{"mutations":[{"op":"insert","from":1,"to":999999,"weight":1}]}`, http.StatusUnprocessableEntity},
		{`{"mutations":[{"op":"delete","from":1,"to":200}]}`, http.StatusUnprocessableEntity}, // already gone
	} {
		rec := httptest.NewRecorder()
		sv.handleEdges(rec, httptest.NewRequest(http.MethodPost, "/edges", strings.NewReader(tc.body)))
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.body, rec.Code, tc.status, rec.Body.String())
		}
	}
	rec = httptest.NewRecorder()
	sv.handleEdges(rec, httptest.NewRequest(http.MethodGet, "/edges", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /edges: status %d", rec.Code)
	}
}

// TestEdgesOracleInvalidation: a mutation on an oracle-backed server warns
// in the response and in /stats until a rebuild.
func TestEdgesOracleInvalidation(t *testing.T) {
	sv := newOracleServer(t)
	rec := httptest.NewRecorder()
	sv.handleEdges(rec, httptest.NewRequest(http.MethodPost, "/edges",
		strings.NewReader(`{"mutations":[{"op":"insert","from":0,"to":100,"weight":2}]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var mresp mutationResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &mresp); err != nil {
		t.Fatal(err)
	}
	if !mresp.OracleInvalidated {
		t.Error("response must warn that the oracle went cold")
	}
	rec = httptest.NewRecorder()
	sv.handleDistance(rec, httptest.NewRequest(http.MethodGet, "/distance?s=1&t=200", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("/distance on a cold oracle: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	sv.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats struct {
		Graph struct {
			OracleInvalidated bool `json:"oracle_invalidated"`
		} `json:"graph"`
		Mutations struct {
			Applied             uint64 `json:"applied"`
			Inserts             uint64 `json:"inserts"`
			OracleInvalidations uint64 `json:"oracle_invalidations"`
		} `json:"mutations"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("%v: %s", err, rec.Body.String())
	}
	if !stats.Graph.OracleInvalidated {
		t.Error("/stats must surface oracle_invalidated")
	}
	if stats.Mutations.Applied != 1 || stats.Mutations.Inserts != 1 || stats.Mutations.OracleInvalidations != 1 {
		t.Errorf("mutation counters: %+v", stats.Mutations)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	sv := newTestServer(t)
	rec := httptest.NewRecorder()
	sv.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200", nil))
	rec = httptest.NewRecorder()
	sv.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var stats map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"server", "graph", "cache", "db", "mutations", "concurrency"} {
		if _, ok := stats[k]; !ok {
			t.Errorf("stats missing section %q", k)
		}
	}

	// The concurrency section must show the served search went through the
	// gate's shared side.
	var conc struct {
		Gate struct {
			SharedAdmits uint64 `json:"shared_admits"`
		} `json:"gate"`
	}
	if err := json.Unmarshal(stats["concurrency"], &conc); err != nil {
		t.Fatalf("concurrency section: %v", err)
	}
	if conc.Gate.SharedAdmits == 0 {
		t.Error("stats: expected a shared gate admission after serving a search")
	}

	// The DB section must expose the plan-cache counters, and a served
	// search must have produced hits (its FEM loop re-executes shapes).
	var db struct {
		PlanCache struct {
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
			Entries int    `json:"entries"`
		} `json:"plan_cache"`
	}
	if err := json.Unmarshal(stats["db"], &db); err != nil {
		t.Fatalf("db section: %v", err)
	}
	if db.PlanCache.Hits == 0 {
		t.Error("stats: expected plan-cache hits after serving a search")
	}
	if db.PlanCache.Entries == 0 {
		t.Error("stats: expected live plan-cache entries")
	}
}

// TestStatsCounters: /stats must surface the cache hit ratio and the
// per-algorithm query counts.
func TestStatsCounters(t *testing.T) {
	sv := newOracleServer(t)
	for i := 0; i < 2; i++ { // second round hits the cache
		rec := httptest.NewRecorder()
		sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200", nil))
		rec = httptest.NewRecorder()
		sv.handleShortestPath(rec, httptest.NewRequest(http.MethodGet, "/shortest-path?s=1&t=200&alg=ALT", nil))
	}
	rec := httptest.NewRecorder()
	sv.handleDistance(rec, httptest.NewRequest(http.MethodGet, "/distance?s=1&t=200", nil))

	rec = httptest.NewRecorder()
	sv.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats struct {
		Server struct {
			ByAlg map[string]uint64 `json:"queries_by_algorithm"`
		} `json:"server"`
		Cache struct {
			Hits     uint64  `json:"hits"`
			Misses   uint64  `json:"misses"`
			HitRatio float64 `json:"hit_ratio"`
		} `json:"cache"`
		Graph struct {
			Oracle *struct {
				K    int `json:"k"`
				Rows int `json:"rows"`
			} `json:"oracle"`
		} `json:"graph"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("%v: %s", err, rec.Body.String())
	}
	if stats.Server.ByAlg["BSDJ"] != 2 || stats.Server.ByAlg["ALT"] != 2 || stats.Server.ByAlg["approx"] != 1 {
		t.Errorf("per-algorithm counts wrong: %+v", stats.Server.ByAlg)
	}
	if stats.Cache.Hits == 0 || stats.Cache.HitRatio <= 0 || stats.Cache.HitRatio > 1 {
		t.Errorf("cache hit ratio not surfaced: %+v", stats.Cache)
	}
	if stats.Graph.Oracle == nil || stats.Graph.Oracle.K != 6 {
		t.Errorf("oracle info not surfaced: %+v", stats.Graph.Oracle)
	}
}

// TestQueryEndpoint: POST /query single and batch forms, auto planning,
// tolerance answers and input validation.
func TestQueryEndpoint(t *testing.T) {
	sv := newOracleServer(t)
	if _, err := sv.eng.BuildSegTable(20); err != nil {
		t.Fatal(err)
	}

	// Single query, alg=auto: the planner decision is surfaced.
	rec := httptest.NewRecorder()
	sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"source":1,"target":200,"alg":"auto"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Found || resp.Planner == "" || resp.Algo == "Auto" {
		t.Fatalf("auto query not planned: %+v", resp)
	}
	if resp.Lower == nil || resp.Upper == nil || *resp.Lower != resp.Distance {
		t.Fatalf("exact answer must carry closed bounds: %+v", resp)
	}

	// Tolerant query: with hub landmarks the oracle frequently answers
	// alone; either way the bounds must bracket the exact distance.
	rec = httptest.NewRecorder()
	sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"source":1,"target":200,"alg":"auto","max_rel_error":100}`)))
	var tol pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tol); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || !tol.Found {
		t.Fatalf("tolerant query failed: %d %+v", rec.Code, tol)
	}
	if *tol.Lower > resp.Distance || *tol.Upper < resp.Distance {
		t.Fatalf("tolerant bounds [%d,%d] miss exact %d", *tol.Lower, *tol.Upper, resp.Distance)
	}

	// Batch form with a per-item algorithm override and one bad item.
	rec = httptest.NewRecorder()
	sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"workers":2,"queries":[
			{"source":1,"target":200},
			{"source":1,"target":200,"alg":"BSDJ"},
			{"source":-4,"target":2}]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []pathResponse `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[1].Error != "" {
		t.Fatalf("valid batch items errored: %+v", out.Results[:2])
	}
	if out.Results[1].Algo != "BSDJ" {
		t.Errorf("per-item hint ignored: %+v", out.Results[1])
	}
	if out.Results[0].Distance != out.Results[1].Distance {
		t.Error("auto and hinted answers disagree")
	}
	if out.Results[2].Error == "" {
		t.Error("bad item must carry a per-item error")
	}

	// Validation and method errors.
	for _, tc := range []struct {
		body   string
		status int
	}{
		{`{`, http.StatusBadRequest},
		{`{"source":1,"target":2,"alg":"NOPE"}`, http.StatusBadRequest},
		{`{"queries":[{"source":1,"target":2,"alg":"NOPE"}]}`, http.StatusBadRequest},
		{`{"source":1,"target":99999999}`, http.StatusUnprocessableEntity},
	} {
		rec := httptest.NewRecorder()
		sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(tc.body)))
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.body, rec.Code, tc.status, rec.Body.String())
		}
	}
	rec = httptest.NewRecorder()
	sv.handleQuery(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d", rec.Code)
	}
}

// TestQueryEndpointCancellation: a dead client context (disconnect) or an
// expired timeout kills the query — 504, queries_cancelled counted, and
// the server keeps serving.
func TestQueryEndpointCancellation(t *testing.T) {
	sv := newTestServer(t)

	// Client disconnected before the query ran.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"source":1,"target":400}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	sv.handleQuery(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("disconnected client: status %d, want 504 (%s)", rec.Code, rec.Body.String())
	}

	// A timeout that cannot possibly be met.
	rec = httptest.NewRecorder()
	sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"source":1,"target":400,"timeout_ms":1}`)))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeout: status %d, want 504 (%s)", rec.Code, rec.Body.String())
	}

	// A disconnected /distance client classifies the same way (504 +
	// counted), not as a generic 422.
	osv := newOracleServer(t)
	dctx, dcancel := context.WithCancel(context.Background())
	dcancel()
	rec = httptest.NewRecorder()
	osv.handleDistance(rec, httptest.NewRequest(http.MethodGet, "/distance?s=1&t=200", nil).WithContext(dctx))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("cancelled /distance: status %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	if osv.cancelled.Load() != 1 {
		t.Errorf("cancelled /distance not counted: %d", osv.cancelled.Load())
	}

	// Both cancellations surfaced in /stats; the engine still answers.
	rec = httptest.NewRecorder()
	sv.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats struct {
		Server struct {
			Cancelled uint64 `json:"queries_cancelled"`
		} `json:"server"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Server.Cancelled != 2 {
		t.Errorf("queries_cancelled = %d, want 2", stats.Server.Cancelled)
	}
	rec = httptest.NewRecorder()
	sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"source":1,"target":200}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("server unusable after cancellations: %d %s", rec.Code, rec.Body.String())
	}
}

// TestStatsPlannerDecisions: /stats reports what auto traffic chose;
// hinted traffic stays out of the map.
func TestStatsPlannerDecisions(t *testing.T) {
	sv := newTestServer(t)
	if _, err := sv.eng.BuildSegTable(20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query",
			strings.NewReader(`{"source":1,"target":200,"alg":"auto"}`)))
		if rec.Code != http.StatusOK {
			t.Fatalf("auto query %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"source":1,"target":200,"alg":"BSDJ"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("hinted query: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	sv.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats struct {
		Server struct {
			Planner map[string]uint64 `json:"planner_decisions"`
			ByAlg   map[string]uint64 `json:"queries_by_algorithm"`
		} `json:"server"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for d, n := range stats.Server.Planner {
		if d == core.DecisionHint {
			t.Errorf("hint decisions must not be counted: %+v", stats.Server.Planner)
		}
		total += n
	}
	if total != 3 {
		t.Errorf("planner_decisions total %d, want 3: %+v", total, stats.Server.Planner)
	}
	if stats.Server.ByAlg["BSEG"] == 0 {
		t.Errorf("resolved algorithm missing from queries_by_algorithm: %+v", stats.Server.ByAlg)
	}
}
