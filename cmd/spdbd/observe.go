package main

import (
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// The server's observability surface: GET /metrics (Prometheus text over
// the obs.Registry: engine, database and serving-tier collectors), GET
// /readyz (load-balancer readiness, distinct from /healthz liveness), and
// GET /debug/slowlog (the -slow-query ring). The per-query stage trace
// (?debug=trace on POST /query) also lives here.

// queryTrace is the optional stage-timing timeline attached to a query
// response when the client asks for ?debug=trace: where one request's wall
// time went, using the engine's QueryStats decomposition. sql_us is the
// statement-execution share (PE+SC+FPR); frontier_us is the Go-side search
// loop (total minus SQL). gate_wait_us and plan_us sit outside total_us,
// which is the search wall time the paper's experiments measure.
type queryTrace struct {
	GateWaitUS int64 `json:"gate_wait_us"`
	PlanUS     int64 `json:"plan_us"`
	SQLUS      int64 `json:"sql_us"`
	FrontierUS int64 `json:"frontier_us"`
	PEUS       int64 `json:"pe_us"`
	SCUS       int64 `json:"sc_us"`
	FPRUS      int64 `json:"fpr_us"`
	TotalUS    int64 `json:"total_us"`
}

// traceFromStats renders the stage timeline of one answered query.
func traceFromStats(qs *core.QueryStats) *queryTrace {
	if qs == nil {
		return nil
	}
	frontier := qs.Total - qs.SQLDur()
	if frontier < 0 {
		frontier = 0
	}
	return &queryTrace{
		GateWaitUS: qs.GateWait.Microseconds(),
		PlanUS:     qs.PlanDur.Microseconds(),
		SQLUS:      qs.SQLDur().Microseconds(),
		FrontierUS: frontier.Microseconds(),
		PEUS:       qs.PE.Microseconds(),
		SCUS:       qs.SC.Microseconds(),
		FPRUS:      qs.FPR.Microseconds(),
		TotalUS:    qs.Total.Microseconds(),
	}
}

// noteSlow offers one finished query to the slow-query ring. wall is the
// measured request duration where the caller has one (the single-query
// path); batch items pass 0 and the entry falls back to the stats-derived
// gate+plan+search sum, which is the same wall time minus render overhead.
func (sv *server) noteSlow(req core.QueryRequest, qs *core.QueryStats, wall time.Duration, errStr string) {
	if sv.slowlog == nil {
		return
	}
	e := obs.SlowQueryEntry{
		Time:     time.Now(),
		Source:   req.Source,
		Target:   req.Target,
		Duration: wall,
		Err:      errStr,
	}
	if qs != nil {
		if e.Duration == 0 {
			e.Duration = qs.GateWait + qs.PlanDur + qs.Total
		}
		e.Algorithm = qs.Algorithm
		if qs.Planner != core.DecisionHint {
			e.Planner = qs.Planner
		}
		e.GateWaitUS = qs.GateWait.Microseconds()
		e.PlanUS = qs.PlanDur.Microseconds()
		e.SQLUS = qs.SQLDur().Microseconds()
		e.Statements = qs.Statements
		e.Iterations = qs.Iterations
		e.Cached = qs.CacheHit
	} else {
		e.Algorithm = req.Alg.String()
	}
	sv.slowlog.Note(e)
}

// handleMetrics serves GET /metrics: the Prometheus text exposition of
// every registered collector (engine, database, serving tier).
func (sv *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "use GET", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := sv.reg.WritePrometheus(w); err != nil {
		// A collector bug, not a client error; the page may be partially
		// written, so all we can do is log-equivalent surfacing via 500.
		http.Error(w, "metrics: "+err.Error(), http.StatusInternalServerError)
	}
}

// handleReadyz serves GET /readyz: readiness, as opposed to /healthz
// liveness. Not ready (503) while no graph is loaded or any index build or
// graph load is in flight — a replica rebuilding its SegTable or oracle
// holds the exclusive gate and answers slowly or not at all, so load
// balancers should route elsewhere until the build lands.
func (sv *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if sv.shard != nil {
		// The sharded coordinator loads every partition before the listener
		// opens and runs no online index builds, so it is ready once serving.
		writeJSON(w, http.StatusOK, map[string]any{
			"ready": true, "shards": sv.shard.Partition().K})
		return
	}
	if sv.eng.Nodes() == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "reason": "no graph loaded"})
		return
	}
	if n := sv.eng.BuildsInFlight(); n > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "reason": "index build in flight", "builds_in_flight": n})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// handleSlowlog serves GET /debug/slowlog: the ring of recent queries
// slower than the -slow-query threshold, newest first.
func (sv *server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	if sv.slowlog == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"enabled": false,
			"hint":    "start spdbd with -slow-query=<duration> to record slow queries",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":      true,
		"threshold_us": sv.slowlog.Threshold().Microseconds(),
		"capacity":     sv.slowlog.Cap(),
		"total":        sv.slowlog.Total(),
		"entries":      sv.slowlog.Entries(),
	})
}

// CollectMetrics implements obs.Collector for the serving tier itself:
// HTTP traffic, per-algorithm answer counts, planner decisions, in-flight
// queries and the slowlog's admission counters. The engine and database
// register their own collectors beside this one.
func (sv *server) CollectMetrics(x *obs.Exporter) {
	x.Counter("spdb_http_requests_total", "HTTP requests received.",
		float64(sv.requests.Load()))
	x.Counter("spdb_http_errors_total", "HTTP requests answered with an error status.",
		float64(sv.errors.Load()))
	x.Counter("spdb_queries_served_total",
		"Individual queries answered (batches count each item).", float64(sv.served.Load()))
	// Every algorithm emits every scrape (plus the no-algorithm approx
	// series) so dashboards never see series appear mid-flight.
	for i := 0; i < algSlots; i++ {
		x.Counter("spdb_queries_served_by_algorithm_total",
			"Answered queries by the algorithm that ran.",
			float64(sv.byAlg[i].Load()), obs.L("algorithm", core.Algorithm(i).String()))
	}
	x.Counter("spdb_queries_served_by_algorithm_total",
		"Answered queries by the algorithm that ran.",
		float64(sv.approx.Load()), obs.L("algorithm", "approx"))
	x.Counter("spdb_queries_cancelled_total",
		"Queries killed by a deadline, timeout or client disconnect.",
		float64(sv.cancelled.Load()))
	// Sorted for a deterministic page; decisions only appear once chosen
	// (the label set is open — planner labels are data, not schema).
	dec := sv.plannerDecisions()
	keys := make([]string, 0, len(dec))
	for k := range dec {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		x.Counter("spdb_planner_decisions_total",
			"Cost-based planner decisions for alg=auto traffic.",
			float64(dec[k]), obs.L("decision", k))
	}
	x.Counter("spdb_server_mutations_total",
		"Edge mutations applied through POST /edges.", float64(sv.mutations.Load()))
	x.Gauge("spdb_queries_in_flight",
		"Queries currently executing (batch items count individually).",
		float64(sv.inflight.Load()))
	x.Gauge("spdb_uptime_seconds", "Seconds since the server started.",
		time.Since(sv.start).Seconds())
	if sv.slowlog != nil {
		x.Counter("spdb_slowlog_admitted_total",
			"Queries ever admitted to the slow-query ring.", float64(sv.slowlog.Total()))
		x.Gauge("spdb_slowlog_entries", "Slow-query ring occupancy.",
			float64(len(sv.slowlog.Entries())))
		x.Gauge("spdb_slowlog_threshold_seconds",
			"Admission threshold of the slow-query ring.",
			sv.slowlog.Threshold().Seconds())
	}
}
