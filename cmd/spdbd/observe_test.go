package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rdb"
)

// newObsServer is newTestServer plus the observability wiring main()
// performs: the /metrics registry and a slow-query ring with the given
// threshold.
func newObsServer(t *testing.T, slowThd time.Duration) *server {
	t.Helper()
	sv := newTestServer(t)
	if slowThd > 0 {
		sv.slowlog = obs.NewSlowLog(slowThd, 8)
	}
	sv.reg = obs.NewRegistry()
	sv.reg.Register(sv.eng)
	sv.reg.Register(sv.eng.DB())
	sv.reg.Register(sv)
	return sv
}

// TestMetricsEndpoint: GET /metrics renders a scraper-valid Prometheus
// page covering every layer the acceptance criteria name — gate
// admissions, planner decisions, plan cache, buffer-pool shards,
// per-algorithm latency histograms, serving counters.
func TestMetricsEndpoint(t *testing.T) {
	sv := newObsServer(t, 0)
	if _, err := sv.eng.BuildSegTable(20); err != nil {
		t.Fatal(err)
	}
	// Traffic: one auto query (a planner decision), one hinted repeat (a
	// path-cache interaction), so the families carry real values.
	for _, body := range []string{
		`{"source":1,"target":200,"alg":"auto"}`,
		`{"source":1,"target":200,"alg":"BSDJ"}`,
		`{"source":1,"target":200,"alg":"BSDJ"}`,
	} {
		rec := httptest.NewRecorder()
		sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("query %s: %d %s", body, rec.Code, rec.Body.String())
		}
	}

	rec := httptest.NewRecorder()
	sv.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	page := rec.Body.String()
	if err := obs.CheckExposition(page); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, page)
	}
	for _, want := range []string{
		// Engine families.
		`spdb_query_duration_seconds_bucket{algorithm="BSDJ",le="+Inf"}`,
		`spdb_gate_admissions_total{mode="shared"}`,
		`spdb_gate_wait_seconds_count`,
		`spdb_path_cache_misses_total`,
		`spdb_seg_built 1`,
		// Database families.
		`spdb_plan_cache_hits_total`,
		`spdb_bufferpool_hits_total{shard="0"}`,
		`spdb_bufferpool_fence_waits_total{shard="0"}`,
		`spdb_sql_statements_total`,
		// Serving-tier families.
		`spdb_http_requests_total 3`,
		`spdb_queries_served_total 3`,
		`spdb_queries_served_by_algorithm_total{algorithm="approx"} 0`,
		`spdb_planner_decisions_total{decision=`,
		`spdb_queries_in_flight 0`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Method guard.
	rec = httptest.NewRecorder()
	sv.handleMetrics(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: %d", rec.Code)
	}
}

// TestReadyzTransitions: /readyz is 503 with no graph, 200 once loaded,
// 503 again while an index build is in flight, and /healthz stays 200
// throughout (liveness is not readiness).
func TestReadyzTransitions(t *testing.T) {
	db, err := rdb.Open(rdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	eng := core.NewEngine(db, core.Options{})
	t.Cleanup(func() { eng.Close() })
	sv := &server{eng: eng, defaultAlg: core.AlgBSDJ, start: time.Now()}

	ready := func() int {
		rec := httptest.NewRecorder()
		sv.handleReadyz(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		return rec.Code
	}
	alive := func() int {
		rec := httptest.NewRecorder()
		sv.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		return rec.Code
	}

	if got := ready(); got != http.StatusServiceUnavailable {
		t.Fatalf("no graph: /readyz %d, want 503", got)
	}
	if got := alive(); got != http.StatusOK {
		t.Fatalf("no graph: /healthz %d, want 200 (liveness)", got)
	}

	if err := eng.LoadGraph(graph.Power(3000, 3, 42)); err != nil {
		t.Fatal(err)
	}
	if got := ready(); got != http.StatusOK {
		t.Fatalf("loaded: /readyz %d, want 200", got)
	}

	// A SegTable build in flight flips readiness off; poll from a second
	// goroutine while it runs (builds on this graph take long enough that
	// the window is reliably observable).
	var (
		saw503 bool
		wg     sync.WaitGroup
	)
	buildDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-buildDone:
				return
			default:
			}
			if ready() == http.StatusServiceUnavailable {
				saw503 = true
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	if _, err := eng.BuildSegTable(20); err != nil {
		t.Fatal(err)
	}
	close(buildDone)
	wg.Wait()
	if !saw503 {
		t.Error("/readyz never reported 503 during the SegTable build")
	}
	if got := ready(); got != http.StatusOK {
		t.Fatalf("after build: /readyz %d, want 200", got)
	}
	if got := alive(); got != http.StatusOK {
		t.Fatalf("after build: /healthz %d, want 200", got)
	}
}

// TestSlowlogEndpoint: queries over the threshold land in the ring and
// surface on /debug/slowlog with their stage decomposition; a server
// without -slow-query reports disabled.
func TestSlowlogEndpoint(t *testing.T) {
	// Threshold 0ns-equivalent: 1ns admits everything, so the test does
	// not depend on absolute query speed.
	sv := newObsServer(t, time.Nanosecond)
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query",
			strings.NewReader(`{"source":1,"target":200}`)))
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}

	rec := httptest.NewRecorder()
	sv.handleSlowlog(rec, httptest.NewRequest(http.MethodGet, "/debug/slowlog", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/slowlog: %d", rec.Code)
	}
	var out struct {
		Enabled     bool                 `json:"enabled"`
		ThresholdUS int64                `json:"threshold_us"`
		Capacity    int                  `json:"capacity"`
		Total       uint64               `json:"total"`
		Entries     []obs.SlowQueryEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled || out.Capacity != 8 || out.Total != 3 || len(out.Entries) != 3 {
		t.Fatalf("slowlog state: %+v", out)
	}
	// Oldest entry (last in newest-first order) is the real search; the
	// newer cache hits can legitimately truncate to 0µs.
	e := out.Entries[len(out.Entries)-1]
	if e.Source != 1 || e.Target != 200 || e.DurationUS <= 0 {
		t.Errorf("entry lacks endpoints or duration: %+v", e)
	}
	if e.Algorithm == "" {
		t.Errorf("entry lacks algorithm: %+v", e)
	}
	// Later entries hit the cache: Cached surfaces in the log.
	if !out.Entries[0].Cached {
		t.Errorf("repeated query not marked cached: %+v", out.Entries[0])
	}

	// Disabled server: still serves, reports disabled.
	bare := newObsServer(t, 0)
	rec = httptest.NewRecorder()
	bare.handleSlowlog(rec, httptest.NewRequest(http.MethodGet, "/debug/slowlog", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("disabled slowlog: %d", rec.Code)
	}
	var off struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &off); err != nil {
		t.Fatal(err)
	}
	if off.Enabled {
		t.Error("slowlog reports enabled without -slow-query")
	}
}

// TestQueryTrace: ?debug=trace attaches the stage timeline to single and
// batch answers; without it no trace is rendered.
func TestQueryTrace(t *testing.T) {
	sv := newObsServer(t, 0)

	rec := httptest.NewRecorder()
	sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query?debug=trace",
		strings.NewReader(`{"source":1,"target":200}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("traced query: %d %s", rec.Code, rec.Body.String())
	}
	var resp pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("debug=trace attached no trace")
	}
	tr := resp.Trace
	if tr.TotalUS <= 0 || tr.SQLUS <= 0 {
		t.Errorf("trace lacks totals: %+v", tr)
	}
	// sql_us truncates the summed duration; the per-stage fields truncate
	// individually, so the sum may trail by up to one microsecond per stage.
	if d := tr.SQLUS - (tr.PEUS + tr.SCUS + tr.FPRUS); d < 0 || d > 3 {
		t.Errorf("sql_us %d vs pe+sc+fpr (%d+%d+%d)", tr.SQLUS, tr.PEUS, tr.SCUS, tr.FPRUS)
	}
	if tr.SQLUS+tr.FrontierUS > tr.TotalUS+1 { // +1 for microsecond rounding
		t.Errorf("stages exceed total: %+v", tr)
	}

	// Batch form: every item traced.
	rec = httptest.NewRecorder()
	sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query?debug=trace",
		strings.NewReader(`{"queries":[{"source":1,"target":200},{"source":2,"target":100}]}`)))
	var out struct {
		Results []pathResponse `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.Trace == nil {
			t.Errorf("batch item %d untraced: %+v", i, r)
		}
	}

	// No flag: no trace.
	rec = httptest.NewRecorder()
	sv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"source":3,"target":150}`)))
	var plain pathResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("trace rendered without debug=trace")
	}
}
