// Command spdbd is the shortest-path database server: it loads or generates
// a graph into the embedded relational engine and serves shortest-path
// queries over HTTP to any number of concurrent clients. It is the online
// half of the system — the offline half (SegTable construction, bulk load)
// runs at startup — and leans on the engine's path cache for throughput:
// repeated queries are answered from memory without touching the database.
//
// Endpoints:
//
//	POST /query                                  unified declarative query (see below)
//	GET  /shortest-path?s=17&t=4711[&alg=BSEG]   one query, JSON answer (thin adapter)
//	GET  /shortest-path?s=17&t=4711&mode=approx  landmark interval, no search
//	POST /shortest-path                          {"alg":"BSDJ","queries":[{"s":1,"t":2},...]}
//	GET  /distance?s=17&t=4711                   [lower, upper] distance interval
//	POST /edges                                  {"mutations":[{"op":"insert","from":1,"to":2,"weight":3},
//	                                              {"op":"delete","from":4,"to":5},
//	                                              {"op":"update","from":6,"to":7,"weight":9}]}
//	POST /admin/snapshot                         write a versioned snapshot now (-data-dir only)
//	GET  /stats                                  engine, cache, DB, mutation and server counters
//	GET  /metrics                                Prometheus text exposition (all layers)
//	GET  /healthz                                liveness (200 while the process serves)
//	GET  /readyz                                 readiness (503 until the graph is loaded
//	                                             and no index build is in flight)
//	GET  /debug/slowlog                          recent queries over the -slow-query threshold
//
// POST /query is the context-aware entry point the other query endpoints
// adapt to. A request names the endpoints and, optionally, an algorithm
// hint (default "auto": the engine's cost-based planner chooses), an error
// tolerance that allows landmark-oracle-only answers, a statement budget,
// and a per-request timeout:
//
//	{"source":17,"target":4711,"alg":"auto","max_rel_error":0.1,
//	 "max_statements":50000,"timeout_ms":250}
//	{"queries":[{"source":1,"target":2},{"source":3,"target":4}],"workers":4}
//
// Every query runs under the request's context: when the client
// disconnects or the timeout fires, the engine abandons the search within
// one frontier iteration (504 on timeout) instead of holding the query
// latch. /stats reports planner_decisions (what "auto" chose) and
// queries_cancelled (how often deadlines or disconnects fired).
//
// POST /query?debug=trace additionally attaches a stage-timing trace to
// each answer — gate wait, planning, SQL execution, frontier loop — the
// same decomposition the per-algorithm latency histograms on /metrics and
// the -slow-query ring use (docs/ARCHITECTURE.md §Observability).
//
// POST /edges applies the whole batch atomically with respect to queries:
// one query-latch acquisition, one version bump, one cache purge. Deleted
// and re-weighted edges repair the SegTable incrementally (falling back to
// a rebuild past the engine's repair threshold), so BSEG keeps answering
// exactly without a manual rebuild. Any mutation invalidates the landmark
// oracle; /stats reports oracle_invalidated until the operator rebuilds
// (restart with -landmarks, or accept exact-only service). The hub-label
// index (-labels) is hardier: a per-mutation keep-analysis proves most
// redundant changes harmless and keeps the index live, and only changes it
// cannot absorb send it cold (/stats labels_invalidated).
//
// The hub-label (2-hop) index (-labels) answers exact distances with one
// merge-join over two label scans — microseconds instead of a frontier
// loop — and the cost-based planner prefers it for every exact query while
// it is valid.
//
// Approximate answers come from the landmark oracle (-landmarks): they
// bracket the distance by landmark triangulation without touching the edge
// relation, so they stay microsecond-fast while exact searches run.
//
// With -data-dir the server is durable: every mutation batch is logged to
// a write-ahead log (fsynced before it applies), POST /admin/snapshot and
// the -snapshot-every ticker write versioned snapshots of the graph and
// every built index, and startup hydrates from the newest snapshot plus
// the WAL suffix — skipping CSV ingest and every index rebuild — falling
// back to -gen/-load only when the directory holds no snapshot yet.
//
// Examples:
//
//	spdbd -gen power:20000:3 -lthd 20 -landmarks 16 -labels -addr :8080
//	spdbd -gen power:20000:3 -lthd 20 -data-dir /var/lib/spdb -snapshot-every 5m
//	curl -X POST localhost:8080/query -d '{"source":17,"target":4711,"timeout_ms":250}'
//	curl -X POST localhost:8080/query -d '{"source":17,"target":4711,"max_rel_error":0.1}'
//	curl 'localhost:8080/shortest-path?s=17&t=4711'
//	curl 'localhost:8080/distance?s=17&t=4711'
//	curl -X POST localhost:8080/edges -d '{"mutations":[{"op":"delete","from":17,"to":18}]}'
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window before the listener closes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rdb"
	"repro/internal/shard"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spdbd: "+format+"\n", args...)
	os.Exit(1)
}

// server holds the shared serving state: one engine over one database,
// request counters, and the default algorithm for queries that don't name
// one.
type server struct {
	eng *core.Engine
	// shard is the partition-parallel coordinator when the server runs with
	// -shards; eng is nil then, and the query paths route through it. The
	// single-engine-only surfaces (mutations, snapshots, landmark intervals)
	// answer 409 in that mode.
	shard      *shard.ShardedEngine
	defaultAlg core.Algorithm
	start      time.Time

	requests atomic.Uint64
	errors   atomic.Uint64
	served   atomic.Uint64 // individual queries answered (batch counts each)
	// byAlg counts answered queries per algorithm (indexed by Algorithm);
	// approx counts landmark-interval answers, which run no algorithm.
	byAlg  [algSlots]atomic.Uint64
	approx atomic.Uint64
	// cancelled counts queries that died on a deadline, timeout or client
	// disconnect — operators read it against queries_served to see whether
	// the fleet's timeouts are tight enough to matter.
	cancelled atomic.Uint64
	// planner counts the cost-based planner's decisions for alg=auto
	// traffic (keyed by the engine's Decision* labels), so operators can
	// see what the planner is actually choosing.
	plannerMu sync.Mutex
	planner   map[string]uint64
	// mutations counts applied edge mutations (the engine keeps the
	// detailed per-op and repair counters).
	mutations atomic.Uint64
	// inflight gauges queries currently executing (batch items count
	// individually); /metrics exports it as spdb_queries_in_flight.
	inflight atomic.Int64

	// reg is the /metrics registry (engine + database + this server);
	// slowlog is the -slow-query ring, nil when the flag is off.
	reg     *obs.Registry
	slowlog *obs.SlowLog
}

// notePlanner records one planner decision (auto traffic only: explicit
// hints are already visible in queries_by_algorithm).
func (sv *server) notePlanner(decision string) {
	if decision == "" || decision == core.DecisionHint {
		return
	}
	sv.plannerMu.Lock()
	if sv.planner == nil {
		sv.planner = map[string]uint64{}
	}
	sv.planner[decision]++
	sv.plannerMu.Unlock()
}

// plannerDecisions snapshots the decision counters.
func (sv *server) plannerDecisions() map[string]uint64 {
	sv.plannerMu.Lock()
	defer sv.plannerMu.Unlock()
	out := make(map[string]uint64, len(sv.planner))
	for k, v := range sv.planner {
		out[k] = v
	}
	return out
}

// noteQueryError classifies a Query error: cancellations (deadline,
// timeout, client disconnect) count separately and map to 504, everything
// else to 422.
func (sv *server) noteQueryError(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		sv.cancelled.Add(1)
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

// algSlots bounds the per-algorithm counter array; core.AlgLabel is the
// highest algorithm id.
const algSlots = int(core.AlgLabel) + 1

func (sv *server) countAlg(alg core.Algorithm) {
	if int(alg) < algSlots {
		sv.byAlg[alg].Add(1)
	}
}

// queriesByAlgorithm snapshots the per-algorithm counters, only reporting
// algorithms that served traffic.
func (sv *server) queriesByAlgorithm() map[string]uint64 {
	out := map[string]uint64{}
	for i := 0; i < algSlots; i++ {
		if n := sv.byAlg[i].Load(); n > 0 {
			out[core.Algorithm(i).String()] = n
		}
	}
	if n := sv.approx.Load(); n > 0 {
		out["approx"] = n
	}
	return out
}

// pathResponse is the JSON answer for one shortest-path query (the unified
// /query endpoint and the legacy adapters share it).
type pathResponse struct {
	Source int64 `json:"source"`
	Target int64 `json:"target"`
	// Algo is the algorithm that actually ran — under alg=auto the
	// planner's choice, "Auto" when the landmark oracle answered alone.
	Algo string `json:"algorithm"`
	// Planner is the planner's decision label for auto queries
	// ("bseg", "alt-weak-seg", "oracle-approx", ...); empty for hints.
	Planner string `json:"planner,omitempty"`
	Found   bool   `json:"found"`
	// Distance is exact, or the oracle upper bound when Approximate.
	Distance int64 `json:"distance,omitempty"`
	// Approximate marks an oracle-only answer within the requested
	// max_rel_error; Lower/Upper bracket the true distance.
	Approximate bool    `json:"approximate,omitempty"`
	Lower       *int64  `json:"lower,omitempty"`
	Upper       *int64  `json:"upper,omitempty"`
	Path        []int64 `json:"path,omitempty"`
	Cached      bool    `json:"cached"`
	// Statements is the number of SQL statements the query issued
	// (0 on a cache hit).
	Statements int `json:"statements"`
	// Iterations counts frontier rounds the search used.
	Iterations int    `json:"iterations,omitempty"`
	DurationUS int64  `json:"duration_us"`
	Error      string `json:"error,omitempty"`
	// Trace is the ?debug=trace stage-timing timeline (nil otherwise).
	Trace *queryTrace `json:"trace,omitempty"`
}

// distanceResponse is the JSON answer for an approximate-distance query:
// the interval [lower, upper] always contains the exact distance. Upper is
// omitted when no landmark certifies a path; unreachable is a proof that
// no path exists at all.
type distanceResponse struct {
	Source      int64  `json:"source"`
	Target      int64  `json:"target"`
	Mode        string `json:"mode"`
	Lower       int64  `json:"lower"`
	Upper       *int64 `json:"upper,omitempty"`
	Exact       bool   `json:"exact"`
	Unreachable bool   `json:"unreachable"`
	DurationUS  int64  `json:"duration_us"`
	Error       string `json:"error,omitempty"`
}

// batchRequest is the POST /shortest-path body.
type batchRequest struct {
	Alg     string `json:"alg,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Queries []struct {
		S int64 `json:"s"`
		T int64 `json:"t"`
	} `json:"queries"`
}

func parseGen(spec string, seed int64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	num := func(i int, def int64) int64 {
		if i < len(parts) {
			if v, err := strconv.ParseInt(parts[i], 10, 64); err == nil {
				return v
			}
		}
		return def
	}
	switch parts[0] {
	case "power":
		return graph.Power(num(1, 10000), int(num(2, 3)), seed), nil
	case "random":
		return graph.Random(num(1, 10000), int(num(2, 30000)), seed), nil
	case "dblp":
		return graph.DBLPLike(float64(num(1, 1))/100.0, seed), nil
	case "web":
		return graph.GoogleWebLike(float64(num(1, 1))/100.0, seed), nil
	case "lj":
		return graph.LiveJournalLike(float64(num(1, 1))/1000.0, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q (power|random|dblp|web|lj)", parts[0])
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// query routes one request to whichever engine this server runs: the
// sharded coordinator under -shards, the single engine otherwise.
func (sv *server) query(ctx context.Context, req core.QueryRequest) (core.QueryResult, error) {
	if sv.shard != nil {
		return sv.shard.Query(ctx, req)
	}
	return sv.eng.Query(ctx, req)
}

// queryBatch is the batch twin of query.
func (sv *server) queryBatch(ctx context.Context, reqs []core.QueryRequest, workers int) []core.QueryResponse {
	if sv.shard != nil {
		return sv.shard.QueryBatch(ctx, reqs, workers)
	}
	return sv.eng.QueryBatch(ctx, reqs, workers)
}

// rejectSharded answers 409 for endpoints the sharded mode does not carry
// (mutations, snapshots, landmark intervals) and reports whether it did.
func (sv *server) rejectSharded(w http.ResponseWriter, what string) bool {
	if sv.shard == nil {
		return false
	}
	sv.errors.Add(1)
	writeJSON(w, http.StatusConflict, map[string]string{
		"error": what + " is not available in sharded mode (-shards)"})
	return true
}

// answer runs one declarative query under ctx and renders the response,
// maintaining the serving counters. status is the HTTP code the caller
// should write (200, 422, or 504 for a deadline/disconnect). trace attaches
// the ?debug=trace stage timeline to the answer.
func (sv *server) answer(ctx context.Context, req core.QueryRequest, trace bool) (pathResponse, int) {
	sv.inflight.Add(1)
	defer sv.inflight.Add(-1)
	t0 := time.Now()
	res, err := sv.query(ctx, req)
	wall := time.Since(t0)
	if err != nil {
		sv.noteSlow(req, res.Stats, wall, err.Error())
		return pathResponse{
			Source:     req.Source,
			Target:     req.Target,
			Algo:       req.Alg.String(),
			DurationUS: wall.Microseconds(),
			Error:      err.Error(),
		}, sv.noteQueryError(err)
	}
	sv.noteSlow(req, res.Stats, wall, "")
	resp := sv.renderResult(req, res, trace)
	resp.DurationUS = wall.Microseconds()
	return resp, http.StatusOK
}

// answerApprox serves a landmark-interval answer. status is the HTTP code
// the caller should write; cancellations classify like every other query
// endpoint (504 + queries_cancelled) rather than a generic 422.
func (sv *server) answerApprox(ctx context.Context, s, t int64) (distanceResponse, int) {
	t0 := time.Now()
	iv, err := sv.eng.DistanceInterval(ctx, s, t)
	resp := distanceResponse{
		Source:     s,
		Target:     t,
		Mode:       "approx",
		DurationUS: time.Since(t0).Microseconds(),
	}
	if err != nil {
		resp.Error = err.Error()
		return resp, sv.noteQueryError(err)
	}
	if iv.Unreachable() {
		resp.Unreachable = true
	} else {
		resp.Lower = iv.Lower
		if iv.UpperKnown() {
			u := iv.Upper
			resp.Upper = &u
			resp.Exact = iv.Exact()
		}
	}
	sv.served.Add(1)
	sv.approx.Add(1)
	return resp, http.StatusOK
}

// handleDistance serves GET /distance: the approximate [lower, upper]
// interval from the landmark oracle.
func (sv *server) handleDistance(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	if r.Method != http.MethodGet {
		sv.errors.Add(1)
		w.Header().Set("Allow", "GET")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET"})
		return
	}
	if sv.rejectSharded(w, "the landmark distance interval") {
		return
	}
	q := r.URL.Query()
	s, errS := strconv.ParseInt(q.Get("s"), 10, 64)
	t, errT := strconv.ParseInt(q.Get("t"), 10, 64)
	if errS != nil || errT != nil {
		sv.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "need integer query parameters s and t"})
		return
	}
	resp, status := sv.answerApprox(r.Context(), s, t)
	if status != http.StatusOK {
		sv.errors.Add(1)
	}
	writeJSON(w, status, resp)
}

// mutationSpec is one edge change in a POST /edges body.
type mutationSpec struct {
	Op     string `json:"op"` // insert | delete | update
	From   int64  `json:"from"`
	To     int64  `json:"to"`
	Weight int64  `json:"weight,omitempty"`
}

// mutationRequest is the POST /edges body: a batch of mutations applied
// under one latch acquisition and one version bump.
type mutationRequest struct {
	Mutations []mutationSpec `json:"mutations"`
}

// mutationResponse reports one applied batch.
type mutationResponse struct {
	Applied int `json:"applied"`
	// Affected counts SegTable rows improved by insertions plus rows in
	// decremental touch sets; Repaired the rows re-materialized in place.
	Affected int64 `json:"affected"`
	Repaired int64 `json:"repaired"`
	// Rebuilt reports a threshold-exceeded fallback to a full index build.
	Rebuilt bool `json:"rebuilt"`
	// OracleInvalidated warns that this batch killed the landmark oracle:
	// approx/ALT answers refuse until it is rebuilt.
	OracleInvalidated bool `json:"oracle_invalidated"`
	// LabelsInvalidated warns that this batch failed the hub-label
	// keep-analysis: LABEL answers (and the planner's labels preference)
	// refuse until the index is rebuilt.
	LabelsInvalidated bool   `json:"labels_invalidated"`
	Version           uint64 `json:"version"`
	Statements        int    `json:"statements"`
	DurationUS        int64  `json:"duration_us"`
	Error             string `json:"error,omitempty"`
}

// handleEdges serves POST /edges: batched inserts, deletes and weight
// updates with incremental SegTable repair.
func (sv *server) handleEdges(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	if r.Method != http.MethodPost {
		sv.errors.Add(1)
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use POST"})
		return
	}
	if sv.rejectSharded(w, "edge mutation") {
		return
	}
	var req mutationRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sv.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	if len(req.Mutations) == 0 {
		sv.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "empty mutation batch"})
		return
	}
	muts := make([]core.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		op, err := core.ParseMutOp(m.Op)
		if err != nil {
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("mutation %d: %v", i, err)})
			return
		}
		muts[i] = core.Mutation{Op: op, From: m.From, To: m.To, Weight: m.Weight}
	}
	t0 := time.Now()
	st, err := sv.eng.ApplyMutations(muts)
	resp := mutationResponse{DurationUS: time.Since(t0).Microseconds()}
	if st != nil {
		// On an execution error st reports the persisted prefix: clients
		// must not read a 422 as "nothing happened" and blindly retry.
		resp.Applied = st.Applied
		resp.Affected = st.Affected
		resp.Repaired = st.Repaired
		resp.Rebuilt = st.Rebuilt
		resp.OracleInvalidated = st.OracleInvalidated
		resp.LabelsInvalidated = st.LabelsInvalidated
		resp.Statements = st.Statements
		// The version this batch committed as, snapshotted under the
		// query latch — GraphVersion() here could already belong to a
		// concurrent later batch.
		resp.Version = st.Version
		// Count the persisted prefix even on error, matching the engine's
		// own per-op counters.
		sv.mutations.Add(uint64(st.Applied))
	}
	if err != nil {
		sv.errors.Add(1)
		resp.Error = err.Error()
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot serves POST /admin/snapshot: write a versioned snapshot
// of the graph and every built index right now. 409 when the server runs
// without -data-dir. A snapshot of an unmoved graph version reports
// skipped=true and costs nothing.
func (sv *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	if r.Method != http.MethodPost {
		sv.errors.Add(1)
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use POST"})
		return
	}
	if sv.rejectSharded(w, "snapshot") {
		return
	}
	st, err := sv.eng.Snapshot(r.Context())
	if err != nil {
		sv.errors.Add(1)
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// runBatch answers a request set through the engine's worker pool under
// ctx and renders the shared batch response shape. trace attaches the
// ?debug=trace stage timeline to every item.
func (sv *server) runBatch(ctx context.Context, reqs []core.QueryRequest, workers int, trace bool) map[string]any {
	sv.inflight.Add(int64(len(reqs)))
	defer sv.inflight.Add(-int64(len(reqs)))
	t0 := time.Now()
	results := sv.queryBatch(ctx, reqs, workers)
	out := make([]pathResponse, len(results))
	for i, res := range results {
		if res.Err != nil {
			out[i] = pathResponse{
				Source: res.Request.Source,
				Target: res.Request.Target,
				Algo:   res.Request.Alg.String(),
				Error:  res.Err.Error(),
			}
			sv.errors.Add(1)
			sv.noteQueryError(res.Err)
			sv.noteSlow(res.Request, res.Result.Stats, 0, res.Err.Error())
			continue
		}
		out[i] = sv.renderResult(res.Request, res.Result, trace)
		// Batch items carry no individual wall measurement; noteSlow falls
		// back to the stats-derived gate+plan+search sum.
		sv.noteSlow(res.Request, res.Result.Stats, 0, "")
	}
	return map[string]any{
		"results":     out,
		"duration_us": time.Since(t0).Microseconds(),
	}
}

// renderResult converts one successful QueryResult, maintaining counters
// (the single-query path goes through answer, which also measures latency).
// trace attaches the stage-timing timeline.
func (sv *server) renderResult(req core.QueryRequest, res core.QueryResult, trace bool) pathResponse {
	resp := pathResponse{
		Source:      req.Source,
		Target:      req.Target,
		Algo:        res.Algorithm.String(),
		Found:       res.Found,
		Distance:    res.Distance,
		Approximate: res.Approximate,
		Path:        res.Path.Nodes,
	}
	if res.Found || res.Approximate {
		l, u := res.Lower, res.Upper
		resp.Lower, resp.Upper = &l, &u
	}
	if qs := res.Stats; qs != nil {
		if qs.Planner != core.DecisionHint {
			resp.Planner = qs.Planner
		}
		resp.Cached = qs.CacheHit
		resp.Statements = qs.Statements
		resp.Iterations = qs.Iterations
		if req.Alg == core.AlgAuto {
			sv.notePlanner(qs.Planner)
		}
		if trace {
			resp.Trace = traceFromStats(qs)
		}
	}
	sv.served.Add(1)
	if res.Approximate {
		sv.approx.Add(1)
	} else {
		sv.countAlg(res.Algorithm)
	}
	return resp
}

// queryItem is one declarative query in a POST /query body.
type queryItem struct {
	Source        int64   `json:"source"`
	Target        int64   `json:"target"`
	Alg           string  `json:"alg,omitempty"`
	MaxRelError   float64 `json:"max_rel_error,omitempty"`
	MaxStatements int64   `json:"max_statements,omitempty"`
}

// queryRequestBody is the POST /query body: a single query, or a batch
// under "queries". TimeoutMS bounds the whole request; the client
// disconnecting cancels it either way.
type queryRequestBody struct {
	queryItem
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
	Workers   int         `json:"workers,omitempty"`
	Queries   []queryItem `json:"queries,omitempty"`
}

// toRequest resolves one query item. def is the algorithm used when the
// item names none: POST /query defaults to the planner (AlgAuto) — an
// explicit tolerance must never be silently ignored because the server
// was started with a legacy -alg default — while the legacy adapters keep
// honoring -alg.
func (sv *server) toRequest(it queryItem, def core.Algorithm) (core.QueryRequest, error) {
	alg := def
	if it.Alg != "" {
		var err error
		if alg, err = core.ParseAlgorithm(it.Alg); err != nil {
			return core.QueryRequest{}, err
		}
	}
	return core.QueryRequest{
		Source:        it.Source,
		Target:        it.Target,
		Alg:           alg,
		MaxRelError:   it.MaxRelError,
		MaxStatements: it.MaxStatements,
	}, nil
}

// handleQuery serves POST /query, the unified context-aware entry point.
// The request context (client disconnect) plus the optional timeout_ms
// bound every search: a dead client's query is abandoned within one
// frontier iteration instead of blocking the latch.
func (sv *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	if r.Method != http.MethodPost {
		sv.errors.Add(1)
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use POST"})
		return
	}
	var body queryRequestBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		sv.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	ctx := r.Context()
	if body.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	trace := r.URL.Query().Get("debug") == "trace"
	if len(body.Queries) == 0 {
		req, err := sv.toRequest(body.queryItem, core.AlgAuto)
		if err != nil {
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		resp, status := sv.answer(ctx, req, trace)
		if status != http.StatusOK {
			sv.errors.Add(1)
		}
		writeJSON(w, status, resp)
		return
	}
	reqs := make([]core.QueryRequest, len(body.Queries))
	for i, it := range body.Queries {
		req, err := sv.toRequest(it, core.AlgAuto)
		if err != nil {
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("query %d: %v", i, err)})
			return
		}
		reqs[i] = req
	}
	writeJSON(w, http.StatusOK, sv.runBatch(ctx, reqs, body.Workers, trace))
}

// handleShortestPath serves GET (single query) and POST (batch) — thin
// adapters over the unified Query API, kept for one release; both run
// under the request context, so client disconnects cancel the search.
func (sv *server) handleShortestPath(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		s, errS := strconv.ParseInt(q.Get("s"), 10, 64)
		t, errT := strconv.ParseInt(q.Get("t"), 10, 64)
		if errS != nil || errT != nil {
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": "need integer query parameters s and t"})
			return
		}
		switch q.Get("mode") {
		case "", "exact":
		case "approx":
			resp, status := sv.answerApprox(r.Context(), s, t)
			if status != http.StatusOK {
				sv.errors.Add(1)
			}
			writeJSON(w, status, resp)
			return
		default:
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("unknown mode %q (exact|approx)", q.Get("mode"))})
			return
		}
		alg := sv.defaultAlg
		if a := q.Get("alg"); a != "" {
			var err error
			if alg, err = core.ParseAlgorithm(a); err != nil {
				sv.errors.Add(1)
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
		}
		resp, status := sv.answer(r.Context(), core.QueryRequest{Source: s, Target: t, Alg: alg}, false)
		if status != http.StatusOK {
			sv.errors.Add(1)
		}
		writeJSON(w, status, resp)

	case http.MethodPost:
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
			return
		}
		if len(req.Queries) == 0 {
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "empty batch"})
			return
		}
		alg := sv.defaultAlg
		if req.Alg != "" {
			var err error
			if alg, err = core.ParseAlgorithm(req.Alg); err != nil {
				sv.errors.Add(1)
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
		}
		reqs := make([]core.QueryRequest, len(req.Queries))
		for i, q := range req.Queries {
			reqs[i] = core.QueryRequest{Source: q.S, Target: q.T, Alg: alg}
		}
		writeJSON(w, http.StatusOK, sv.runBatch(r.Context(), reqs, req.Workers, false))

	default:
		sv.errors.Add(1)
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET or POST"})
	}
}

// serverStatsBlock is the serving-tier section of /stats, shared by the
// single-engine and sharded documents.
func (sv *server) serverStatsBlock() map[string]any {
	return map[string]any{
		"uptime_s":             int64(time.Since(sv.start).Seconds()),
		"requests":             sv.requests.Load(),
		"errors":               sv.errors.Load(),
		"queries_served":       sv.served.Load(),
		"queries_by_algorithm": sv.queriesByAlgorithm(),
		// planner_decisions shows what alg=auto actually chose
		// (engine Decision* labels); queries_cancelled how often
		// deadlines, timeouts or client disconnects killed a query.
		"planner_decisions": sv.plannerDecisions(),
		"queries_cancelled": sv.cancelled.Load(),
	}
}

// handleStats reports every layer's counters in one JSON document.
func (sv *server) handleStats(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	if sv.shard != nil {
		st := sv.shard.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"server": sv.serverStatsBlock(),
			"graph": map[string]any{
				"nodes":     st.Nodes,
				"edges":     st.Edges,
				"seg_built": st.SegBuilt,
			},
			"shard": st,
		})
		return
	}
	dbStats := sv.eng.DB().Stats()
	cacheStats := sv.eng.CacheStats()
	// Hit ratio over the lookups that could have hit (hits + misses);
	// 0 when the cache has seen no traffic.
	hitRatio := 0.0
	if lookups := cacheStats.Hits + cacheStats.Misses; lookups > 0 {
		hitRatio = float64(cacheStats.Hits) / float64(lookups)
	}
	graphStats := map[string]any{
		"nodes":    sv.eng.Nodes(),
		"edges":    sv.eng.Edges(),
		"wmin":     sv.eng.WMin(),
		"seg_lthd": sv.eng.SegLthd(),
		"version":  sv.eng.GraphVersion(),
		// oracle_invalidated warns operators that a mutation killed the
		// landmark oracle: approx/ALT traffic refuses until a rebuild.
		"oracle_invalidated": sv.eng.OracleInvalidated(),
		// labels_invalidated is the hub-label twin: a mutation the
		// keep-analysis could not absorb sent the 2-hop index cold.
		"labels_invalidated": sv.eng.LabelsInvalidated(),
	}
	if orc := sv.eng.Oracle(); orc != nil {
		graphStats["oracle"] = map[string]any{
			"landmarks": orc.Landmarks,
			"k":         orc.K,
			"strategy":  orc.Strategy.String(),
			"rows":      orc.Rows,
		}
	}
	if lbl := sv.eng.Labels(); lbl != nil {
		graphStats["labels"] = map[string]any{
			"hubs":     lbl.Hubs,
			"rows_out": lbl.RowsOut,
			"rows_in":  lbl.RowsIn,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"server": sv.serverStatsBlock(),
		"graph":  graphStats,
		"mutations": func() map[string]any {
			ms := sv.eng.MutationStats()
			return map[string]any{
				"applied":              sv.mutations.Load(),
				"inserts":              ms.Inserts,
				"deletes":              ms.Deletes,
				"updates":              ms.Updates,
				"batches":              ms.Batches,
				"seg_repairs":          ms.SegRepairs,
				"seg_rebuilds":         ms.SegRebuilds,
				"rows_repaired":        ms.RowsRepaired,
				"oracle_invalidations": ms.OracleInvalidations,
				"label_keeps":          ms.LabelKeeps,
				"label_invalidations":  ms.LabelInvalidations,
			}
		}(),
		// concurrency reports the query gate (parallel shared admissions
		// vs exclusive drains), the scratch-table pool, and the optimistic
		// snapshot machinery's retry/degrade counters.
		"concurrency": sv.eng.ConcurrencyStats(),
		// durability reports the WAL and snapshot counters (zero-valued
		// without -data-dir).
		"durability": sv.eng.DurabilityStats(),
		"cache": map[string]any{
			"hits":          cacheStats.Hits,
			"misses":        cacheStats.Misses,
			"hit_ratio":     hitRatio,
			"evictions":     cacheStats.Evictions,
			"invalidations": cacheStats.Invalidations,
			"entries":       cacheStats.Entries,
			"capacity":      cacheStats.Capacity,
		},
		"db": map[string]any{
			"statements":         dbStats.Statements,
			"session_statements": dbStats.SessionStatements,
			"sessions_opened":    dbStats.SessionsOpened,
			"active_sessions":    dbStats.ActiveSessions,
			"parse_plan_us":      dbStats.ParsePlanDur.Microseconds(),
			"exec_us":            dbStats.ExecDur.Microseconds(),
			"plan_cache": map[string]any{
				"hits":          dbStats.PlanCacheHits,
				"misses":        dbStats.PlanCacheMisses,
				"invalidations": dbStats.PlanCacheInvalidations,
				"entries":       dbStats.PlanCacheEntries,
				"schema_epoch":  dbStats.SchemaEpoch,
			},
			"pool": dbStats.Pool,
			"io":   dbStats.IO,
		},
	})
}

// handleHealthz is the liveness probe: 200 while the process can answer
// HTTP at all. Whether a graph is loaded or an index build is in flight is
// a readiness question — /readyz — not a liveness one: restarting a replica
// because it is mid-rebuild would only make it rebuild again.
func (sv *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		gen      = flag.String("gen", "", "generate a graph: power:N:D | random:N:M | dblp:PCT | web:PCT | lj:PERMILLE")
		load     = flag.String("load", "", "load a CSV graph (fid,tid,cost)")
		algName  = flag.String("alg", "BSDJ", "default algorithm: AUTO|DJ|BDJ|BSDJ|BBFS|BSEG|ALT|LABEL (AUTO = cost-based planner)")
		lthd     = flag.Int64("lthd", 0, "build SegTable with this threshold (required for BSEG)")
		lmk      = flag.Int("landmarks", 0, "build a landmark oracle with this many landmarks (required for ALT and /distance)")
		lbls     = flag.Bool("labels", false, "build the hub-label (2-hop) index at startup (required for LABEL; AUTO prefers it while valid)")
		lmkStrat = flag.String("landmark-strategy", "degree", "landmark placement: degree|farthest")
		cacheSz  = flag.Int("cache", 0, "path cache entries (0 = default, negative disables)")
		poolSz   = flag.Int("pool", 0, "buffer pool pages (0 = default)")
		seed     = flag.Int64("seed", 42, "generator seed")
		drainDur = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		slowThd  = flag.Duration("slow-query", 0, "log queries slower than this to /debug/slowlog (0 disables)")
		slowCap  = flag.Int("slow-query-log", obs.DefaultSlowLogSize, "slow-query ring capacity")
		dataDir  = flag.String("data-dir", "", "durability directory: WAL every mutation, hydrate from snapshots at startup")
		snapEvry = flag.Duration("snapshot-every", 0, "write a snapshot at this interval (-data-dir only, 0 disables)")
		snapExit = flag.Bool("snapshot-on-exit", true, "write a final snapshot during graceful shutdown (-data-dir only)")
		shards   = flag.Int("shards", 0, "serve with this many partition-parallel shard engines (0 = single engine)")
		partStr  = flag.String("partition", "hash", "shard partition strategy: hash|range (-shards only)")
		portals  = flag.Int("portals", 0, "cut-vertex sketch portals for superstep pruning (-shards only, 0 disables)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *gen != "":
		g, err = parseGen(*gen, *seed)
	case *load != "":
		g, err = graph.LoadFile(*load)
	default:
		if *dataDir == "" {
			fail("need -gen or -load (try -gen power:10000:3), or -data-dir with a snapshot")
		}
	}
	if err != nil {
		fail("%v", err)
	}
	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		fail("%v", err)
	}

	// Sharded mode replaces the single engine with the partition-parallel
	// coordinator. The single-engine-only machinery (durability, landmark
	// oracle, hub labels, mutations) stays off: the shards would each need
	// their own WAL/index story, and the coordinator only speaks the
	// superstep algorithms.
	var (
		eng      *core.Engine
		db       *rdb.DB
		shardEng *shard.ShardedEngine
	)
	if *shards > 0 {
		if g == nil {
			fail("-shards needs -gen or -load")
		}
		if *dataDir != "" {
			fail("-shards does not support -data-dir (durability is single-engine only)")
		}
		if *lmk > 0 || *lbls {
			fail("-shards supports neither -landmarks nor -labels")
		}
		switch alg {
		case core.AlgAuto, core.AlgBSDJ, core.AlgBBFS, core.AlgBSEG:
		default:
			fail("-alg %s is not available with -shards (use AUTO, BSDJ, BBFS or BSEG)", alg)
		}
		strat, err := shard.ParseStrategy(*partStr)
		if err != nil {
			fail("%v", err)
		}
		lt := *lthd
		if lt <= 0 && alg == core.AlgBSEG {
			lt = 20 // same default the single-engine BSEG startup uses
		}
		fmt.Printf("spdbd: opening %d shard engines (%s partitioning, %d nodes / %d edges)...\n",
			*shards, strat, g.N, g.M())
		shardEng, err = shard.Open(g, shard.Options{
			Shards:          *shards,
			Strategy:        strat,
			Lthd:            lt,
			Portals:         *portals,
			BufferPoolPages: *poolSz,
		})
		if err != nil {
			fail("shard: %v", err)
		}
		defer shardEng.Close()
		st := shardEng.Stats()
		fmt.Printf("spdbd: sharded: %d cut edges, seg_built=%v, portals=%d\n",
			st.CutEdges, st.SegBuilt, st.Portals)
	}
	if shardEng == nil {
		db, err = rdb.Open(rdb.Options{BufferPoolPages: *poolSz})
		if err != nil {
			fail("%v", err)
		}
		defer db.Close()
	}
	engOpts := core.Options{CacheSize: *cacheSz, DataDir: *dataDir}

	// Startup prefers hydration: the newest snapshot plus the WAL suffix
	// restores the graph AND every index recorded in the manifest without
	// re-ingesting CSV or rebuilding anything. Only when the data
	// directory holds no snapshot yet does the server fall back to
	// -gen/-load, and then it writes the first snapshot itself (below) so
	// the next start hydrates.
	if *dataDir != "" {
		e, err := core.OpenFromSnapshot(db, engOpts)
		switch {
		case err == nil:
			eng = e
			ds := eng.DurabilityStats()
			fmt.Printf("spdbd: hydrated %d nodes / %d edges from snapshot v%d (+%d WAL records replayed)\n",
				eng.Nodes(), eng.Edges(), ds.LastSnapshotVersion, ds.ReplayedRecords)
		case errors.Is(err, core.ErrNoSnapshot):
			if g == nil {
				fail("%v (and no -gen/-load to fall back to)", err)
			}
			fmt.Printf("spdbd: no snapshot in %s, loading from scratch\n", *dataDir)
		default:
			fail("hydrate: %v", err)
		}
	}
	if eng == nil && shardEng == nil {
		eng = core.NewEngine(db, engOpts)
		fmt.Printf("spdbd: loading graph (%d nodes, %d edges)...\n", g.N, g.M())
		if err := eng.LoadGraph(g); err != nil {
			fail("load: %v", err)
		}
	}
	if eng != nil {
		defer eng.Close()
	}

	// Index builds run only when requested AND missing: a hydrated engine
	// already carries every index its snapshot recorded. (The sharded
	// coordinator built its per-shard SegTables during Open.)
	if eng != nil && (*lthd > 0 || alg == core.AlgBSEG) && eng.SegLthd() == 0 {
		th := *lthd
		if th <= 0 {
			th = 20
		}
		fmt.Printf("spdbd: building SegTable (lthd=%d)...\n", th)
		st, err := eng.BuildSegTable(th)
		if err != nil {
			fail("segtable: %v", err)
		}
		fmt.Printf("spdbd: %s\n", st)
	}
	if eng != nil && (*lmk > 0 || alg == core.AlgALT) && eng.Oracle() == nil {
		strat, err := oracle.ParseStrategy(*lmkStrat)
		if err != nil {
			fail("%v", err)
		}
		k := *lmk
		if k <= 0 {
			k = oracle.DefaultK
		}
		fmt.Printf("spdbd: building landmark oracle (k=%d, %s)...\n", k, strat)
		st, err := eng.BuildOracle(oracle.Config{K: k, Strategy: strat})
		if err != nil {
			fail("oracle: %v", err)
		}
		fmt.Printf("spdbd: %s\n", st)
	}
	if eng != nil && (*lbls || alg == core.AlgLabel) && eng.Labels() == nil {
		fmt.Println("spdbd: building hub-label index...")
		st, err := eng.BuildLabels()
		if err != nil {
			fail("labels: %v", err)
		}
		fmt.Printf("spdbd: %s\n", st)
	}
	if *dataDir != "" {
		// Persist the startup state (fresh load, or hydration plus any
		// just-built indexes); skipped for free when nothing moved. A
		// failure here is a warning, not fatal: the WAL still guards every
		// mutation, only hydration speed is lost.
		if st, err := eng.Snapshot(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "spdbd: warning: startup snapshot failed: %v\n", err)
		} else if !st.Skipped {
			fmt.Printf("spdbd: snapshot v%d written (%d tables, %d bytes)\n", st.Version, st.Tables, st.Bytes)
		}
	}

	sv := &server{eng: eng, shard: shardEng, defaultAlg: alg, start: time.Now()}
	if *slowThd > 0 {
		sv.slowlog = obs.NewSlowLog(*slowThd, *slowCap)
	}
	sv.reg = obs.NewRegistry()
	if shardEng != nil {
		sv.reg.Register(shardEng)
	} else {
		sv.reg.Register(eng)
		sv.reg.Register(db)
	}
	sv.reg.Register(sv)
	mux := http.NewServeMux()
	mux.HandleFunc("/query", sv.handleQuery)
	mux.HandleFunc("/shortest-path", sv.handleShortestPath)
	mux.HandleFunc("/distance", sv.handleDistance)
	mux.HandleFunc("/edges", sv.handleEdges)
	mux.HandleFunc("/admin/snapshot", sv.handleSnapshot)
	mux.HandleFunc("/stats", sv.handleStats)
	mux.HandleFunc("/metrics", sv.handleMetrics)
	mux.HandleFunc("/healthz", sv.handleHealthz)
	mux.HandleFunc("/readyz", sv.handleReadyz)
	mux.HandleFunc("/debug/slowlog", sv.handleSlowlog)
	srv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic snapshots run until shutdown begins; the Snapshot skip
	// logic makes idle ticks free.
	snapCtx, stopSnaps := context.WithCancel(ctx)
	var snapWG sync.WaitGroup
	if *dataDir != "" && *snapEvry > 0 {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			tick := time.NewTicker(*snapEvry)
			defer tick.Stop()
			for {
				select {
				case <-snapCtx.Done():
					return
				case <-tick.C:
					if st, err := sv.eng.Snapshot(snapCtx); err != nil {
						fmt.Fprintf(os.Stderr, "spdbd: warning: periodic snapshot failed: %v\n", err)
					} else if !st.Skipped {
						fmt.Printf("spdbd: snapshot v%d written (%d tables, %d bytes)\n",
							st.Version, st.Tables, st.Bytes)
					}
				}
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	if shardEng != nil {
		fmt.Printf("spdbd: serving graph with %d nodes / %d edges on %s (%d shards, default algorithm %s)\n",
			shardEng.Nodes(), shardEng.Edges(), *addr, shardEng.Partition().K, alg)
	} else {
		fmt.Printf("spdbd: serving graph with %d nodes / %d edges on %s (default algorithm %s)\n",
			eng.Nodes(), eng.Edges(), *addr, alg)
	}

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	case <-ctx.Done():
		// Graceful shutdown, in order:
		//  1. srv.Shutdown drains in-flight requests (bounded by -drain) —
		//     every accepted mutation is already WAL-fsynced when its
		//     handler responds, so nothing accepted can be lost after this.
		//  2. The periodic snapshot ticker stops (and is awaited), so no
		//     snapshot races the exit snapshot.
		//  3. An optional exit snapshot persists everything since the last
		//     one — the next start hydrates instead of replaying the WAL.
		//  4. The deferred eng.Close runs last: final WAL fsync+close, then
		//     session and database teardown (buffer-pool flush).
		fmt.Println("spdbd: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainDur)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fail("shutdown: %v", err)
		}
		stopSnaps()
		snapWG.Wait()
		if *dataDir != "" && *snapExit {
			if st, err := sv.eng.Snapshot(context.Background()); err != nil {
				fmt.Fprintf(os.Stderr, "spdbd: warning: exit snapshot failed: %v\n", err)
			} else if !st.Skipped {
				fmt.Printf("spdbd: exit snapshot v%d written\n", st.Version)
			}
		}
		fmt.Printf("spdbd: served %d queries in %d requests (%d errors)\n",
			sv.served.Load(), sv.requests.Load(), sv.errors.Load())
	}
	stopSnaps()
}
