// Command spdbd is the shortest-path database server: it loads or generates
// a graph into the embedded relational engine and serves shortest-path
// queries over HTTP to any number of concurrent clients. It is the online
// half of the system — the offline half (SegTable construction, bulk load)
// runs at startup — and leans on the engine's path cache for throughput:
// repeated queries are answered from memory without touching the database.
//
// Endpoints:
//
//	GET  /shortest-path?s=17&t=4711[&alg=BSEG]   one query, JSON answer
//	GET  /shortest-path?s=17&t=4711&mode=approx  landmark interval, no search
//	POST /shortest-path                          {"alg":"BSDJ","queries":[{"s":1,"t":2},...]}
//	GET  /distance?s=17&t=4711                   [lower, upper] distance interval
//	POST /edges                                  {"mutations":[{"op":"insert","from":1,"to":2,"weight":3},
//	                                              {"op":"delete","from":4,"to":5},
//	                                              {"op":"update","from":6,"to":7,"weight":9}]}
//	GET  /stats                                  engine, cache, DB, mutation and server counters
//	GET  /healthz                                liveness (200 once the graph is served)
//
// POST /edges applies the whole batch atomically with respect to queries:
// one query-latch acquisition, one version bump, one cache purge. Deleted
// and re-weighted edges repair the SegTable incrementally (falling back to
// a rebuild past the engine's repair threshold), so BSEG keeps answering
// exactly without a manual rebuild. Any mutation invalidates the landmark
// oracle; /stats reports oracle_invalidated until the operator rebuilds
// (restart with -landmarks, or accept exact-only service).
//
// Approximate answers come from the landmark oracle (-landmarks): they
// bracket the distance by landmark triangulation without touching the edge
// relation, so they stay microsecond-fast while exact searches run.
//
// Examples:
//
//	spdbd -gen power:20000:3 -alg BSEG -lthd 20 -addr :8080
//	spdbd -load graph.csv -alg ALT -landmarks 16
//	curl 'localhost:8080/shortest-path?s=17&t=4711'
//	curl 'localhost:8080/distance?s=17&t=4711'
//	curl -X POST localhost:8080/edges -d '{"mutations":[{"op":"delete","from":17,"to":18}]}'
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window before the listener closes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spdbd: "+format+"\n", args...)
	os.Exit(1)
}

// server holds the shared serving state: one engine over one database,
// request counters, and the default algorithm for queries that don't name
// one.
type server struct {
	eng        *core.Engine
	defaultAlg core.Algorithm
	start      time.Time

	requests atomic.Uint64
	errors   atomic.Uint64
	served   atomic.Uint64 // individual queries answered (batch counts each)
	// byAlg counts answered queries per algorithm (indexed by Algorithm);
	// approx counts landmark-interval answers, which run no algorithm.
	byAlg  [algSlots]atomic.Uint64
	approx atomic.Uint64
	// mutations counts applied edge mutations (the engine keeps the
	// detailed per-op and repair counters).
	mutations atomic.Uint64
}

// algSlots bounds the per-algorithm counter array; core.AlgALT is the
// highest algorithm id.
const algSlots = int(core.AlgALT) + 1

func (sv *server) countAlg(alg core.Algorithm) {
	if int(alg) < algSlots {
		sv.byAlg[alg].Add(1)
	}
}

// queriesByAlgorithm snapshots the per-algorithm counters, only reporting
// algorithms that served traffic.
func (sv *server) queriesByAlgorithm() map[string]uint64 {
	out := map[string]uint64{}
	for i := 0; i < algSlots; i++ {
		if n := sv.byAlg[i].Load(); n > 0 {
			out[core.Algorithm(i).String()] = n
		}
	}
	if n := sv.approx.Load(); n > 0 {
		out["approx"] = n
	}
	return out
}

// pathResponse is the JSON answer for one shortest-path query.
type pathResponse struct {
	Source   int64   `json:"source"`
	Target   int64   `json:"target"`
	Algo     string  `json:"algorithm"`
	Found    bool    `json:"found"`
	Distance int64   `json:"distance,omitempty"`
	Path     []int64 `json:"path,omitempty"`
	Cached   bool    `json:"cached"`
	// Statements is the number of SQL statements the query issued
	// (0 on a cache hit).
	Statements int    `json:"statements"`
	DurationUS int64  `json:"duration_us"`
	Error      string `json:"error,omitempty"`
}

// distanceResponse is the JSON answer for an approximate-distance query:
// the interval [lower, upper] always contains the exact distance. Upper is
// omitted when no landmark certifies a path; unreachable is a proof that
// no path exists at all.
type distanceResponse struct {
	Source      int64  `json:"source"`
	Target      int64  `json:"target"`
	Mode        string `json:"mode"`
	Lower       int64  `json:"lower"`
	Upper       *int64 `json:"upper,omitempty"`
	Exact       bool   `json:"exact"`
	Unreachable bool   `json:"unreachable"`
	DurationUS  int64  `json:"duration_us"`
	Error       string `json:"error,omitempty"`
}

// batchRequest is the POST /shortest-path body.
type batchRequest struct {
	Alg     string `json:"alg,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Queries []struct {
		S int64 `json:"s"`
		T int64 `json:"t"`
	} `json:"queries"`
}

func parseGen(spec string, seed int64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	num := func(i int, def int64) int64 {
		if i < len(parts) {
			if v, err := strconv.ParseInt(parts[i], 10, 64); err == nil {
				return v
			}
		}
		return def
	}
	switch parts[0] {
	case "power":
		return graph.Power(num(1, 10000), int(num(2, 3)), seed), nil
	case "random":
		return graph.Random(num(1, 10000), int(num(2, 30000)), seed), nil
	case "dblp":
		return graph.DBLPLike(float64(num(1, 1))/100.0, seed), nil
	case "web":
		return graph.GoogleWebLike(float64(num(1, 1))/100.0, seed), nil
	case "lj":
		return graph.LiveJournalLike(float64(num(1, 1))/1000.0, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q (power|random|dblp|web|lj)", parts[0])
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (sv *server) answer(alg core.Algorithm, s, t int64) pathResponse {
	t0 := time.Now()
	p, qs, err := sv.eng.ShortestPath(alg, s, t)
	resp := pathResponse{
		Source:     s,
		Target:     t,
		Algo:       alg.String(),
		DurationUS: time.Since(t0).Microseconds(),
	}
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	resp.Found = p.Found
	resp.Distance = p.Length
	resp.Path = p.Nodes
	if qs != nil {
		resp.Cached = qs.CacheHit
		resp.Statements = qs.Statements
	}
	sv.served.Add(1)
	sv.countAlg(alg)
	return resp
}

// answerApprox serves a landmark-interval answer.
func (sv *server) answerApprox(s, t int64) distanceResponse {
	t0 := time.Now()
	iv, err := sv.eng.ApproxDistance(s, t)
	resp := distanceResponse{
		Source:     s,
		Target:     t,
		Mode:       "approx",
		DurationUS: time.Since(t0).Microseconds(),
	}
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	if iv.Unreachable() {
		resp.Unreachable = true
	} else {
		resp.Lower = iv.Lower
		if iv.UpperKnown() {
			u := iv.Upper
			resp.Upper = &u
			resp.Exact = iv.Exact()
		}
	}
	sv.served.Add(1)
	sv.approx.Add(1)
	return resp
}

// handleDistance serves GET /distance: the approximate [lower, upper]
// interval from the landmark oracle.
func (sv *server) handleDistance(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	if r.Method != http.MethodGet {
		sv.errors.Add(1)
		w.Header().Set("Allow", "GET")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET"})
		return
	}
	q := r.URL.Query()
	s, errS := strconv.ParseInt(q.Get("s"), 10, 64)
	t, errT := strconv.ParseInt(q.Get("t"), 10, 64)
	if errS != nil || errT != nil {
		sv.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "need integer query parameters s and t"})
		return
	}
	resp := sv.answerApprox(s, t)
	status := http.StatusOK
	if resp.Error != "" {
		sv.errors.Add(1)
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

// mutationSpec is one edge change in a POST /edges body.
type mutationSpec struct {
	Op     string `json:"op"` // insert | delete | update
	From   int64  `json:"from"`
	To     int64  `json:"to"`
	Weight int64  `json:"weight,omitempty"`
}

// mutationRequest is the POST /edges body: a batch of mutations applied
// under one latch acquisition and one version bump.
type mutationRequest struct {
	Mutations []mutationSpec `json:"mutations"`
}

// mutationResponse reports one applied batch.
type mutationResponse struct {
	Applied int `json:"applied"`
	// Affected counts SegTable rows improved by insertions plus rows in
	// decremental touch sets; Repaired the rows re-materialized in place.
	Affected int64 `json:"affected"`
	Repaired int64 `json:"repaired"`
	// Rebuilt reports a threshold-exceeded fallback to a full index build.
	Rebuilt bool `json:"rebuilt"`
	// OracleInvalidated warns that this batch killed the landmark oracle:
	// approx/ALT answers refuse until it is rebuilt.
	OracleInvalidated bool   `json:"oracle_invalidated"`
	Version           uint64 `json:"version"`
	Statements        int    `json:"statements"`
	DurationUS        int64  `json:"duration_us"`
	Error             string `json:"error,omitempty"`
}

// handleEdges serves POST /edges: batched inserts, deletes and weight
// updates with incremental SegTable repair.
func (sv *server) handleEdges(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	if r.Method != http.MethodPost {
		sv.errors.Add(1)
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use POST"})
		return
	}
	var req mutationRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sv.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	if len(req.Mutations) == 0 {
		sv.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "empty mutation batch"})
		return
	}
	muts := make([]core.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		op, err := core.ParseMutOp(m.Op)
		if err != nil {
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("mutation %d: %v", i, err)})
			return
		}
		muts[i] = core.Mutation{Op: op, From: m.From, To: m.To, Weight: m.Weight}
	}
	t0 := time.Now()
	st, err := sv.eng.ApplyMutations(muts)
	resp := mutationResponse{DurationUS: time.Since(t0).Microseconds()}
	if st != nil {
		// On an execution error st reports the persisted prefix: clients
		// must not read a 422 as "nothing happened" and blindly retry.
		resp.Applied = st.Applied
		resp.Affected = st.Affected
		resp.Repaired = st.Repaired
		resp.Rebuilt = st.Rebuilt
		resp.OracleInvalidated = st.OracleInvalidated
		resp.Statements = st.Statements
		// The version this batch committed as, snapshotted under the
		// query latch — GraphVersion() here could already belong to a
		// concurrent later batch.
		resp.Version = st.Version
		// Count the persisted prefix even on error, matching the engine's
		// own per-op counters.
		sv.mutations.Add(uint64(st.Applied))
	}
	if err != nil {
		sv.errors.Add(1)
		resp.Error = err.Error()
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleShortestPath serves GET (single query) and POST (batch).
func (sv *server) handleShortestPath(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		s, errS := strconv.ParseInt(q.Get("s"), 10, 64)
		t, errT := strconv.ParseInt(q.Get("t"), 10, 64)
		if errS != nil || errT != nil {
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": "need integer query parameters s and t"})
			return
		}
		switch q.Get("mode") {
		case "", "exact":
		case "approx":
			resp := sv.answerApprox(s, t)
			status := http.StatusOK
			if resp.Error != "" {
				sv.errors.Add(1)
				status = http.StatusUnprocessableEntity
			}
			writeJSON(w, status, resp)
			return
		default:
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("unknown mode %q (exact|approx)", q.Get("mode"))})
			return
		}
		alg := sv.defaultAlg
		if a := q.Get("alg"); a != "" {
			var err error
			if alg, err = core.ParseAlgorithm(a); err != nil {
				sv.errors.Add(1)
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
		}
		resp := sv.answer(alg, s, t)
		status := http.StatusOK
		if resp.Error != "" {
			sv.errors.Add(1)
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, resp)

	case http.MethodPost:
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
			return
		}
		if len(req.Queries) == 0 {
			sv.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "empty batch"})
			return
		}
		alg := sv.defaultAlg
		if req.Alg != "" {
			var err error
			if alg, err = core.ParseAlgorithm(req.Alg); err != nil {
				sv.errors.Add(1)
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
		}
		batch := make([]core.BatchQuery, len(req.Queries))
		for i, q := range req.Queries {
			batch[i] = core.BatchQuery{S: q.S, T: q.T}
		}
		t0 := time.Now()
		results := sv.eng.ShortestPathBatch(alg, batch, req.Workers)
		out := make([]pathResponse, len(results))
		for i, res := range results {
			out[i] = pathResponse{
				Source: res.Query.S,
				Target: res.Query.T,
				Algo:   alg.String(),
			}
			if res.Err != nil {
				out[i].Error = res.Err.Error()
				sv.errors.Add(1)
				continue
			}
			out[i].Found = res.Path.Found
			out[i].Distance = res.Path.Length
			out[i].Path = res.Path.Nodes
			if res.Stats != nil {
				out[i].Cached = res.Stats.CacheHit
				out[i].Statements = res.Stats.Statements
			}
			sv.served.Add(1)
			sv.countAlg(alg)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"results":     out,
			"duration_us": time.Since(t0).Microseconds(),
		})

	default:
		sv.errors.Add(1)
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET or POST"})
	}
}

// handleStats reports every layer's counters in one JSON document.
func (sv *server) handleStats(w http.ResponseWriter, r *http.Request) {
	sv.requests.Add(1)
	dbStats := sv.eng.DB().Stats()
	cacheStats := sv.eng.CacheStats()
	// Hit ratio over the lookups that could have hit (hits + misses);
	// 0 when the cache has seen no traffic.
	hitRatio := 0.0
	if lookups := cacheStats.Hits + cacheStats.Misses; lookups > 0 {
		hitRatio = float64(cacheStats.Hits) / float64(lookups)
	}
	graphStats := map[string]any{
		"nodes":    sv.eng.Nodes(),
		"edges":    sv.eng.Edges(),
		"wmin":     sv.eng.WMin(),
		"seg_lthd": sv.eng.SegLthd(),
		"version":  sv.eng.GraphVersion(),
		// oracle_invalidated warns operators that a mutation killed the
		// landmark oracle: approx/ALT traffic refuses until a rebuild.
		"oracle_invalidated": sv.eng.OracleInvalidated(),
	}
	if orc := sv.eng.Oracle(); orc != nil {
		graphStats["oracle"] = map[string]any{
			"landmarks": orc.Landmarks,
			"k":         orc.K,
			"strategy":  orc.Strategy.String(),
			"rows":      orc.Rows,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"server": map[string]any{
			"uptime_s":             int64(time.Since(sv.start).Seconds()),
			"requests":             sv.requests.Load(),
			"errors":               sv.errors.Load(),
			"queries_served":       sv.served.Load(),
			"queries_by_algorithm": sv.queriesByAlgorithm(),
		},
		"graph": graphStats,
		"mutations": func() map[string]any {
			ms := sv.eng.MutationStats()
			return map[string]any{
				"applied":              sv.mutations.Load(),
				"inserts":              ms.Inserts,
				"deletes":              ms.Deletes,
				"updates":              ms.Updates,
				"batches":              ms.Batches,
				"seg_repairs":          ms.SegRepairs,
				"seg_rebuilds":         ms.SegRebuilds,
				"rows_repaired":        ms.RowsRepaired,
				"oracle_invalidations": ms.OracleInvalidations,
			}
		}(),
		"cache": map[string]any{
			"hits":          cacheStats.Hits,
			"misses":        cacheStats.Misses,
			"hit_ratio":     hitRatio,
			"evictions":     cacheStats.Evictions,
			"invalidations": cacheStats.Invalidations,
			"entries":       cacheStats.Entries,
			"capacity":      cacheStats.Capacity,
		},
		"db": map[string]any{
			"statements":         dbStats.Statements,
			"session_statements": dbStats.SessionStatements,
			"sessions_opened":    dbStats.SessionsOpened,
			"active_sessions":    dbStats.ActiveSessions,
			"parse_plan_us":      dbStats.ParsePlanDur.Microseconds(),
			"exec_us":            dbStats.ExecDur.Microseconds(),
			"pool":               dbStats.Pool,
			"io":                 dbStats.IO,
		},
	})
}

// handleHealthz is the liveness probe.
func (sv *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if sv.eng.Nodes() == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no graph loaded"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		gen      = flag.String("gen", "", "generate a graph: power:N:D | random:N:M | dblp:PCT | web:PCT | lj:PERMILLE")
		load     = flag.String("load", "", "load a CSV graph (fid,tid,cost)")
		algName  = flag.String("alg", "BSDJ", "default algorithm: DJ|BDJ|BSDJ|BBFS|BSEG|ALT")
		lthd     = flag.Int64("lthd", 0, "build SegTable with this threshold (required for BSEG)")
		lmk      = flag.Int("landmarks", 0, "build a landmark oracle with this many landmarks (required for ALT and /distance)")
		lmkStrat = flag.String("landmark-strategy", "degree", "landmark placement: degree|farthest")
		cacheSz  = flag.Int("cache", 0, "path cache entries (0 = default, negative disables)")
		poolSz   = flag.Int("pool", 0, "buffer pool pages (0 = default)")
		seed     = flag.Int64("seed", 42, "generator seed")
		drainDur = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *gen != "":
		g, err = parseGen(*gen, *seed)
	case *load != "":
		g, err = graph.LoadFile(*load)
	default:
		fail("need -gen or -load (try -gen power:10000:3)")
	}
	if err != nil {
		fail("%v", err)
	}
	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		fail("%v", err)
	}

	db, err := rdb.Open(rdb.Options{BufferPoolPages: *poolSz})
	if err != nil {
		fail("%v", err)
	}
	defer db.Close()
	eng := core.NewEngine(db, core.Options{CacheSize: *cacheSz})
	defer eng.Close()
	fmt.Printf("spdbd: loading graph (%d nodes, %d edges)...\n", g.N, g.M())
	if err := eng.LoadGraph(g); err != nil {
		fail("load: %v", err)
	}
	if *lthd > 0 || alg == core.AlgBSEG {
		th := *lthd
		if th <= 0 {
			th = 20
		}
		fmt.Printf("spdbd: building SegTable (lthd=%d)...\n", th)
		st, err := eng.BuildSegTable(th)
		if err != nil {
			fail("segtable: %v", err)
		}
		fmt.Printf("spdbd: %s\n", st)
	}
	if *lmk > 0 || alg == core.AlgALT {
		strat, err := oracle.ParseStrategy(*lmkStrat)
		if err != nil {
			fail("%v", err)
		}
		k := *lmk
		if k <= 0 {
			k = oracle.DefaultK
		}
		fmt.Printf("spdbd: building landmark oracle (k=%d, %s)...\n", k, strat)
		st, err := eng.BuildOracle(oracle.Config{K: k, Strategy: strat})
		if err != nil {
			fail("oracle: %v", err)
		}
		fmt.Printf("spdbd: %s\n", st)
	}

	sv := &server{eng: eng, defaultAlg: alg, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/shortest-path", sv.handleShortestPath)
	mux.HandleFunc("/distance", sv.handleDistance)
	mux.HandleFunc("/edges", sv.handleEdges)
	mux.HandleFunc("/stats", sv.handleStats)
	mux.HandleFunc("/healthz", sv.handleHealthz)
	srv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	fmt.Printf("spdbd: serving %s on %s (default algorithm %s)\n", describeGraph(g), *addr, alg)

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	case <-ctx.Done():
		fmt.Println("spdbd: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainDur)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fail("shutdown: %v", err)
		}
		fmt.Printf("spdbd: served %d queries in %d requests (%d errors)\n",
			sv.served.Load(), sv.requests.Load(), sv.errors.Load())
	}
}

func describeGraph(g *graph.Graph) string {
	return fmt.Sprintf("graph with %d nodes / %d edges", g.N, g.M())
}
