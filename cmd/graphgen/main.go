// Command graphgen writes synthetic graphs in the repository's CSV format
// (fid,tid,cost lines with a "# nodes=N" header), covering the paper's
// dataset families.
//
// Examples:
//
//	graphgen -type power -n 100000 -d 3 -o power100k.csv
//	graphgen -type random -n 50000 -m 150000 -o rand.csv
//	graphgen -type lj -scale 0.01 -o lj1pct.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
)

func main() {
	var (
		typ   = flag.String("type", "power", "graph family: power|random|dblp|web|lj")
		n     = flag.Int64("n", 10000, "node count (power/random)")
		d     = flag.Int("d", 3, "average degree (power)")
		m     = flag.Int("m", 0, "edge count (random; default 3n)")
		scale = flag.Float64("scale", 0.01, "scale for real-like datasets (1.0 = paper size)")
		seed  = flag.Int64("seed", 42, "generator seed")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	switch *typ {
	case "power":
		g = graph.Power(*n, *d, *seed)
	case "random":
		edges := *m
		if edges == 0 {
			edges = int(*n) * 3
		}
		g = graph.Random(*n, edges, *seed)
	case "dblp":
		g = graph.DBLPLike(*scale, *seed)
	case "web":
		g = graph.GoogleWebLike(*scale, *seed)
	case "lj":
		g = graph.LiveJournalLike(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown type %q\n", *typ)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "graphgen: %d nodes, %d edges\n", g.N, g.M())
}
