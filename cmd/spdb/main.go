// Command spdb is the shortest-path database shell: it loads or generates
// a graph into the embedded relational engine and answers shortest-path
// queries with any of the paper's five algorithms, or runs raw SQL against
// the graph tables.
//
// Queries go through the engine's unified Query API: -alg auto (the
// default) engages the cost-based planner, -timeout bounds each query via
// context, and -maxerr lets the planner answer from the landmark oracle
// alone within the given relative error (requires -landmarks).
//
// Examples:
//
//	spdb -gen power:20000:3 -alg BSEG -lthd 20 -s 17 -t 4711
//	spdb -load graph.csv -alg BSDJ -random 10
//	spdb -gen power:50000:3 -landmarks 16 -maxerr 0.1 -random 20
//	spdb -gen random:5000:15000 -sql "SELECT COUNT(*) FROM TEdges"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rdb"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spdb: "+format+"\n", args...)
	os.Exit(1)
}

func parseGen(spec string, seed int64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	kind := parts[0]
	num := func(i int, def int64) int64 {
		if i < len(parts) {
			v, err := strconv.ParseInt(parts[i], 10, 64)
			if err == nil {
				return v
			}
		}
		return def
	}
	switch kind {
	case "power":
		return graph.Power(num(1, 10000), int(num(2, 3)), seed), nil
	case "random":
		return graph.Random(num(1, 10000), int(num(2, 30000)), seed), nil
	case "dblp":
		return graph.DBLPLike(float64(num(1, 1))/100.0, seed), nil
	case "web":
		return graph.GoogleWebLike(float64(num(1, 1))/100.0, seed), nil
	case "lj":
		return graph.LiveJournalLike(float64(num(1, 1))/1000.0, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q (power|random|dblp|web|lj)", kind)
}

func parseStrategy(s string) (core.IndexStrategy, error) {
	switch strings.ToLower(s) {
	case "clustered", "cluindex":
		return core.ClusteredIndex, nil
	case "index", "secondary":
		return core.SecondaryIndex, nil
	case "noindex", "none":
		return core.NoIndex, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (clustered|index|noindex)", s)
}

func main() {
	var (
		gen         = flag.String("gen", "", "generate a graph: power:N:D | random:N:M | dblp:PCT | web:PCT | lj:PERMILLE")
		load        = flag.String("load", "", "load a CSV graph (fid,tid,cost)")
		algName     = flag.String("alg", "auto", "algorithm: AUTO|DJ|BDJ|BSDJ|BBFS|BSEG|ALT (auto = cost-based planner)")
		s           = flag.Int64("s", -1, "source node")
		t           = flag.Int64("t", -1, "target node")
		random      = flag.Int("random", 0, "run N random queries instead of -s/-t")
		lthd        = flag.Int64("lthd", 0, "build SegTable with this threshold (required for BSEG)")
		lmk         = flag.Int("landmarks", 0, "build a landmark oracle with this many landmarks (required for ALT)")
		timeout     = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		maxErr      = flag.Float64("maxerr", 0, "acceptable relative error; lets the planner answer from the oracle alone")
		strategy    = flag.String("strategy", "clustered", "index strategy: clustered|index|noindex")
		profile     = flag.String("profile", "dbmsx", "engine profile: dbmsx|postgres")
		traditional = flag.Bool("tsql", false, "use traditional SQL (no window function / MERGE)")
		seed        = flag.Int64("seed", 42, "generator seed")
		sqlStmt     = flag.String("sql", "", "run one SQL statement against the loaded graph and exit")
		showStats   = flag.Bool("stats", true, "print per-query statistics")
		showPath    = flag.Bool("path", true, "print the recovered path")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *gen != "":
		g, err = parseGen(*gen, *seed)
	case *load != "":
		g, err = graph.LoadFile(*load)
	default:
		fail("need -gen or -load (try -gen power:10000:3)")
	}
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("graph: %d nodes, %d edges, wmin=%d\n", g.N, g.M(), g.WMin())

	prof := rdb.ProfileDBMSX
	if strings.HasPrefix(strings.ToLower(*profile), "post") {
		prof = rdb.ProfilePostgreSQL9
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		fail("%v", err)
	}
	db, err := rdb.Open(rdb.Options{Profile: prof})
	if err != nil {
		fail("%v", err)
	}
	defer db.Close()
	eng := core.NewEngine(db, core.Options{Strategy: strat, TraditionalSQL: *traditional})
	if err := eng.LoadGraph(g); err != nil {
		fail("load: %v", err)
	}

	if *sqlStmt != "" {
		runSQL(db, *sqlStmt)
		return
	}

	alg, err := core.ParseAlgorithm(*algName)
	if err != nil {
		fail("%v", err)
	}
	if *lthd > 0 || alg == core.AlgBSEG {
		th := *lthd
		if th <= 0 {
			th = 20
		}
		st, err := eng.BuildSegTable(th)
		if err != nil {
			fail("segtable: %v", err)
		}
		fmt.Printf("%s\n", st)
	}
	if *lmk > 0 || alg == core.AlgALT {
		k := *lmk
		if k <= 0 {
			k = oracle.DefaultK
		}
		st, err := eng.BuildOracle(oracle.Config{K: k})
		if err != nil {
			fail("oracle: %v", err)
		}
		fmt.Printf("%s\n", st)
	}

	runOne := func(s, t int64) {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		res, err := eng.Query(ctx, core.QueryRequest{
			Source: s, Target: t, Alg: alg, MaxRelError: *maxErr,
		})
		if err != nil {
			fail("query: %v", err)
		}
		if !res.Found {
			fmt.Printf("%d -> %d: no path\n", s, t)
			return
		}
		if res.Approximate {
			fmt.Printf("%d -> %d: distance in [%d, %d] (approx, oracle only)\n",
				s, t, res.Lower, res.Upper)
			return
		}
		p := res.Path
		fmt.Printf("%d -> %d: distance %d (%d hops)\n", s, t, p.Length, len(p.Nodes)-1)
		if *showPath {
			fmt.Printf("  path: %v\n", p.Nodes)
		}
		if *showStats {
			if alg == core.AlgAuto {
				fmt.Printf("  planner: %s -> %s\n", res.Stats.Planner, res.Algorithm)
			}
			fmt.Printf("  %s\n", res.Stats)
		}
	}

	if *random > 0 {
		for _, q := range graph.RandomQueries(g, *random, *seed+1) {
			runOne(q[0], q[1])
		}
		return
	}
	if *s < 0 || *t < 0 {
		fail("need -s and -t (or -random N)")
	}
	runOne(*s, *t)
}

func runSQL(db *rdb.DB, stmt string) {
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "SELECT") {
		rows, err := db.Query(stmt)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(strings.Join(rows.Columns, "\t"))
		for _, r := range rows.Data {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, "\t"))
		}
		fmt.Printf("(%d rows)\n", rows.Len())
		return
	}
	res, err := db.Exec(stmt)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
}
