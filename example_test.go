package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// Example demonstrates the library end to end: build a deterministic
// graph, load it into the embedded relational engine, construct the
// SegTable index and answer a query with bi-directional set Dijkstra and
// with SegTable-accelerated search.
func Example() {
	db, err := repro.Open(repro.DBOptions{})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	// A small deterministic chain with a shortcut: 0-1-2-3 plus 0->2.
	g, err := repro.NewGraph(4, []repro.Edge{
		{From: 0, To: 1, Weight: 4},
		{From: 1, To: 2, Weight: 4},
		{From: 0, To: 2, Weight: 5},
		{From: 2, To: 3, Weight: 1},
	})
	if err != nil {
		panic(err)
	}

	eng := repro.NewEngine(db, repro.EngineOptions{})
	if err := eng.LoadGraph(g); err != nil {
		panic(err)
	}
	if _, err := eng.BuildSegTable(6); err != nil {
		panic(err)
	}

	for _, alg := range []repro.Algorithm{repro.AlgBSDJ, repro.AlgBSEG} {
		res, err := eng.Query(context.Background(), repro.QueryRequest{Source: 0, Target: 3, Alg: alg})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v: distance=%d path=%v\n", alg, res.Distance, res.Path.Nodes)
	}
	// Output:
	// BSDJ: distance=6 path=[0 2 3]
	// BSEG: distance=6 path=[0 2 3]
}

// Example_segTableMaintenance shows incremental index maintenance: after
// inserting a cheaper edge, SegTable-accelerated queries see the new
// shortest path without a rebuild.
func Example_segTableMaintenance() {
	db, _ := repro.Open(repro.DBOptions{})
	defer db.Close()
	g, _ := repro.NewGraph(3, []repro.Edge{
		{From: 0, To: 1, Weight: 9},
		{From: 1, To: 2, Weight: 9},
	})
	eng := repro.NewEngine(db, repro.EngineOptions{})
	_ = eng.LoadGraph(g)
	_, _ = eng.BuildSegTable(30)

	bseg := repro.QueryRequest{Source: 0, Target: 2, Alg: repro.AlgBSEG}
	before, _ := eng.Query(context.Background(), bseg)
	_, _ = eng.InsertEdge(0, 2, 5) // a direct shortcut
	after, _ := eng.Query(context.Background(), bseg)
	fmt.Printf("before=%d after=%d\n", before.Distance, after.Distance)
	// Output:
	// before=18 after=5
}
