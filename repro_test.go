package repro_test

import (
	"context"
	"testing"

	"repro"
)

// TestFacadeQuickstart exercises the public API end to end, mirroring the
// README quickstart.
func TestFacadeQuickstart(t *testing.T) {
	db, err := repro.Open(repro.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	g := repro.PowerGraph(400, 3, 42)
	eng := repro.NewEngine(db, repro.EngineOptions{})
	if err := eng.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	st, err := eng.BuildSegTable(20)
	if err != nil {
		t.Fatal(err)
	}
	if st.EncodingNumber() == 0 {
		t.Fatal("empty segtable")
	}
	ost, err := eng.BuildOracle(repro.OracleConfig{K: 4, Strategy: repro.LandmarksByDegree})
	if err != nil {
		t.Fatal(err)
	}
	if ost.Rows == 0 || len(ost.Landmarks) != 4 {
		t.Fatalf("oracle build: %+v", ost)
	}

	for _, q := range repro.RandomQueries(g, 4, 9) {
		ref := repro.MDJ(g, q[0], q[1])
		iv, err := eng.DistanceInterval(context.Background(), q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if ref.Found && (iv.Lower > ref.Distance || (iv.UpperKnown() && iv.Upper < ref.Distance)) {
			t.Fatalf("approx interval [%d,%d] misses exact %d", iv.Lower, iv.Upper, ref.Distance)
		}
		for _, alg := range []repro.Algorithm{repro.AlgBSDJ, repro.AlgBSEG, repro.AlgALT} {
			res, err := eng.Query(context.Background(), repro.QueryRequest{Source: q[0], Target: q[1], Alg: alg})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if res.Found != ref.Found {
				t.Fatalf("%v: found=%v want %v", alg, res.Found, ref.Found)
			}
			if res.Found && res.Distance != ref.Distance {
				t.Fatalf("%v: %d want %d", alg, res.Distance, ref.Distance)
			}
			if res.Stats.Statements == 0 {
				t.Fatalf("%v: no statements recorded", alg)
			}
		}
	}
}

// TestFacadeProfiles verifies the exported profiles behave like the paper's
// two systems.
func TestFacadeProfiles(t *testing.T) {
	if !repro.ProfileDBMSX.SupportsMerge || !repro.ProfileDBMSX.SupportsWindow {
		t.Fatal("DBMS-X supports both features")
	}
	if repro.ProfilePostgreSQL9.SupportsMerge {
		t.Fatal("PostgreSQL 9.0 lacks MERGE")
	}
	if !repro.ProfilePostgreSQL9.SupportsWindow {
		t.Fatal("PostgreSQL 9.0 has window functions")
	}

	db, err := repro.Open(repro.DBOptions{Profile: repro.ProfilePostgreSQL9})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	g := repro.RandomGraph(60, 180, 1)
	eng := repro.NewEngine(db, repro.EngineOptions{})
	if err := eng.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	q := repro.RandomQueries(g, 1, 2)[0]
	ref := repro.MDJ(g, q[0], q[1])
	res, err := eng.Query(context.Background(), repro.QueryRequest{Source: q[0], Target: q[1], Alg: repro.AlgBSDJ})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != ref.Found || (res.Found && res.Distance != ref.Distance) {
		t.Fatalf("postgres profile result wrong: %+v vs %+v", res, ref)
	}
}

// TestFacadeGraphHelpers covers the exported graph utilities.
func TestFacadeGraphHelpers(t *testing.T) {
	g, err := repro.NewGraph(3, []repro.Edge{{From: 0, To: 1, Weight: 2}, {From: 1, To: 2, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	r := repro.MBDJ(g, 0, 2)
	if !r.Found || r.Distance != 5 {
		t.Fatalf("MBDJ: %+v", r)
	}
	if repro.DBLPLike(0.001, 1).N == 0 ||
		repro.GoogleWebLike(0.001, 1).N == 0 ||
		repro.LiveJournalLike(0.0001, 1).N == 0 {
		t.Fatal("real-like generators")
	}
}
