package repro_test

import (
	"testing"

	"repro"
)

// TestFacadeQuickstart exercises the public API end to end, mirroring the
// README quickstart.
func TestFacadeQuickstart(t *testing.T) {
	db, err := repro.Open(repro.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	g := repro.PowerGraph(400, 3, 42)
	eng := repro.NewEngine(db, repro.EngineOptions{})
	if err := eng.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	st, err := eng.BuildSegTable(20)
	if err != nil {
		t.Fatal(err)
	}
	if st.EncodingNumber() == 0 {
		t.Fatal("empty segtable")
	}
	ost, err := eng.BuildOracle(repro.OracleConfig{K: 4, Strategy: repro.LandmarksByDegree})
	if err != nil {
		t.Fatal(err)
	}
	if ost.Rows == 0 || len(ost.Landmarks) != 4 {
		t.Fatalf("oracle build: %+v", ost)
	}

	for _, q := range repro.RandomQueries(g, 4, 9) {
		ref := repro.MDJ(g, q[0], q[1])
		iv, err := eng.ApproxDistance(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if ref.Found && (iv.Lower > ref.Distance || (iv.UpperKnown() && iv.Upper < ref.Distance)) {
			t.Fatalf("approx interval [%d,%d] misses exact %d", iv.Lower, iv.Upper, ref.Distance)
		}
		for _, alg := range []repro.Algorithm{repro.AlgBSDJ, repro.AlgBSEG, repro.AlgALT} {
			p, stats, err := eng.ShortestPath(alg, q[0], q[1])
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if p.Found != ref.Found {
				t.Fatalf("%v: found=%v want %v", alg, p.Found, ref.Found)
			}
			if p.Found && p.Length != ref.Distance {
				t.Fatalf("%v: %d want %d", alg, p.Length, ref.Distance)
			}
			if stats.Statements == 0 {
				t.Fatalf("%v: no statements recorded", alg)
			}
		}
	}
}

// TestFacadeProfiles verifies the exported profiles behave like the paper's
// two systems.
func TestFacadeProfiles(t *testing.T) {
	if !repro.ProfileDBMSX.SupportsMerge || !repro.ProfileDBMSX.SupportsWindow {
		t.Fatal("DBMS-X supports both features")
	}
	if repro.ProfilePostgreSQL9.SupportsMerge {
		t.Fatal("PostgreSQL 9.0 lacks MERGE")
	}
	if !repro.ProfilePostgreSQL9.SupportsWindow {
		t.Fatal("PostgreSQL 9.0 has window functions")
	}

	db, err := repro.Open(repro.DBOptions{Profile: repro.ProfilePostgreSQL9})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	g := repro.RandomGraph(60, 180, 1)
	eng := repro.NewEngine(db, repro.EngineOptions{})
	if err := eng.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	q := repro.RandomQueries(g, 1, 2)[0]
	ref := repro.MDJ(g, q[0], q[1])
	p, _, err := eng.ShortestPath(repro.AlgBSDJ, q[0], q[1])
	if err != nil {
		t.Fatal(err)
	}
	if p.Found != ref.Found || (p.Found && p.Length != ref.Distance) {
		t.Fatalf("postgres profile result wrong: %+v vs %+v", p, ref)
	}
}

// TestFacadeGraphHelpers covers the exported graph utilities.
func TestFacadeGraphHelpers(t *testing.T) {
	g, err := repro.NewGraph(3, []repro.Edge{{From: 0, To: 1, Weight: 2}, {From: 1, To: 2, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	r := repro.MBDJ(g, 0, 2)
	if !r.Found || r.Distance != 5 {
		t.Fatalf("MBDJ: %+v", r)
	}
	if repro.DBLPLike(0.001, 1).N == 0 ||
		repro.GoogleWebLike(0.001, 1).N == 0 ||
		repro.LiveJournalLike(0.0001, 1).N == 0 {
		t.Fatal("real-like generators")
	}
}
