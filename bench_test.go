// Benchmarks regenerating the paper's evaluation artefacts, one per table
// and figure (§5). Each benchmark runs the corresponding internal/bench
// experiment at a reduced scale so `go test -bench=.` completes in minutes;
// use cmd/fembench for full-scale runs and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package repro_test

import (
	"testing"

	"repro/internal/bench"
)

// benchConfig is the reduced-scale configuration for testing.B runs.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Queries = 2
	cfg.Scale = 0.1
	cfg.Seed = 42
	return cfg
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	fn, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := fn(benchConfig())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: empty result", id)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (DJ/BDJ/BSDJ expansions and time).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig6a regenerates Fig 6(a) (BDJ vs BSDJ vs scale).
func BenchmarkFig6a(b *testing.B) { runExperiment(b, "fig6a") }

// BenchmarkFig6b regenerates Fig 6(b) (phase split PE/SC/FPR).
func BenchmarkFig6b(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkFig6c regenerates Fig 6(c) (operator split F/E/M).
func BenchmarkFig6c(b *testing.B) { runExperiment(b, "fig6c") }

// BenchmarkFig6d regenerates Fig 6(d) (NSQL vs TSQL).
func BenchmarkFig6d(b *testing.B) { runExperiment(b, "fig6d") }

// BenchmarkFig7a regenerates Fig 7(a) (BSDJ/BBFS/BSEG on LiveJournal-like).
func BenchmarkFig7a(b *testing.B) { runExperiment(b, "fig7a") }

// BenchmarkFig7b regenerates Fig 7(b) (BBFS/BSDJ/BSEG(3,5,7) on Random).
func BenchmarkFig7b(b *testing.B) { runExperiment(b, "fig7b") }

// BenchmarkTable3 regenerates Table 3 (time/exps/visited on Random).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig7c regenerates Fig 7(c) (BSEG vs lthd, Power).
func BenchmarkFig7c(b *testing.B) { runExperiment(b, "fig7c") }

// BenchmarkFig7d regenerates Fig 7(d) (BSEG vs lthd, real-like).
func BenchmarkFig7d(b *testing.B) { runExperiment(b, "fig7d") }

// BenchmarkFig8a regenerates Fig 8(a) (PostgreSQL profile).
func BenchmarkFig8a(b *testing.B) { runExperiment(b, "fig8a") }

// BenchmarkFig8b regenerates Fig 8(b) (query time vs buffer size).
func BenchmarkFig8b(b *testing.B) { runExperiment(b, "fig8b") }

// BenchmarkFig8c regenerates Fig 8(c) (index strategies).
func BenchmarkFig8c(b *testing.B) { runExperiment(b, "fig8c") }

// BenchmarkFig8d regenerates Fig 8(d) (vs in-memory MDJ/MBDJ).
func BenchmarkFig8d(b *testing.B) { runExperiment(b, "fig8d") }

// BenchmarkFig9a regenerates Fig 9(a) (index size vs lthd, Power).
func BenchmarkFig9a(b *testing.B) { runExperiment(b, "fig9a") }

// BenchmarkFig9b regenerates Fig 9(b) (index size vs lthd, real-like).
func BenchmarkFig9b(b *testing.B) { runExperiment(b, "fig9b") }

// BenchmarkFig9c regenerates Fig 9(c) (construction time vs lthd, Power).
func BenchmarkFig9c(b *testing.B) { runExperiment(b, "fig9c") }

// BenchmarkFig9d regenerates Fig 9(d) (construction time vs lthd, real-like).
func BenchmarkFig9d(b *testing.B) { runExperiment(b, "fig9d") }

// BenchmarkFig9e regenerates Fig 9(e) (construction, PostgreSQL profile).
func BenchmarkFig9e(b *testing.B) { runExperiment(b, "fig9e") }

// BenchmarkFig9f regenerates Fig 9(f) (construction NSQL vs TSQL).
func BenchmarkFig9f(b *testing.B) { runExperiment(b, "fig9f") }

// BenchmarkFig9g regenerates Fig 9(g) (construction vs buffer size).
func BenchmarkFig9g(b *testing.B) { runExperiment(b, "fig9g") }

// BenchmarkFig9h regenerates Fig 9(h) (construction vs graph scale).
func BenchmarkFig9h(b *testing.B) { runExperiment(b, "fig9h") }

// BenchmarkAblationPruning measures the Theorem-1 pruning rule (DESIGN §5).
func BenchmarkAblationPruning(b *testing.B) { runExperiment(b, "ablation-pruning") }

// BenchmarkAblationDirection measures the direction-selection policy.
func BenchmarkAblationDirection(b *testing.B) { runExperiment(b, "ablation-direction") }
